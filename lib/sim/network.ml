open Atomrep_stats
module Trace = Atomrep_obs.Trace

type stats = {
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable dead_dest : int;
  mutable rpc_timeouts : int;
  mutable storage_faults : int;
}

(* Persistent fail-slow laws: how a gray site's service time inflates while
   the fault is installed. Distinct from transient delay spikes — a spike
   stretches one message; fail-slow stretches every message through the site
   until it is cleared. *)
type slow_mode =
  | Slow_constant of float
  | Slow_heavy of { factor : float; p_tail : float; tail_factor : float }
  | Slow_creeping of { rate : float; cap : float }

let slow_mode_label = function
  | Slow_constant _ -> "constant"
  | Slow_heavy _ -> "heavy"
  | Slow_creeping _ -> "creeping"

type t = {
  engine : Engine.t;
  n_sites : int;
  latency_mean : float;
  mutable drop_probability : float;
  mutable dup_probability : float;
  mutable spike_probability : float;
  mutable spike_factor : float;
  slow : (slow_mode * float) option array; (* installed law, onset time *)
  up : bool array;
  mutable groups : int array; (* partition group per site *)
  blocked : (int * int, unit) Hashtbl.t; (* one-way failed links, (src, dst) *)
  stats : stats;
  mutable amnesia_listeners : (int -> unit) list;
  mutable rejoin_listeners : (int -> unit) list;
  mutable recover_listeners : (int -> unit) list;
  mutable commit_window_listeners : (int -> unit) list;
  mutable takeover_listeners : (int -> unit) list;
  mutable storage_listeners : (int -> Atomrep_store.Wal.fault -> unit) list;
  mutable skew_handler : site:int -> amount:int -> unit;
  mutable resync_quorum : int;
  mutable trace : Trace.t;
  mutable router : (src:int -> dst:int -> bool) option;
  mutable rpc_result_listeners :
    (src:int -> dst:int -> ok:bool -> elapsed:float -> unit) list;
}

let create engine ~n_sites ?(latency_mean = 5.0) ?(drop_probability = 0.0) () =
  {
    engine;
    n_sites;
    latency_mean;
    drop_probability;
    dup_probability = 0.0;
    spike_probability = 0.0;
    spike_factor = 1.0;
    slow = Array.make n_sites None;
    up = Array.make n_sites true;
    groups = Array.make n_sites 0;
    blocked = Hashtbl.create 8;
    stats =
      {
        sent = 0;
        dropped = 0;
        duplicated = 0;
        dead_dest = 0;
        rpc_timeouts = 0;
        storage_faults = 0;
      };
    amnesia_listeners = [];
    rejoin_listeners = [];
    recover_listeners = [];
    commit_window_listeners = [];
    takeover_listeners = [];
    storage_listeners = [];
    skew_handler = (fun ~site:_ ~amount:_ -> ());
    resync_quorum = 0;
    trace = Trace.null;
    router = None;
    rpc_result_listeners = [];
  }

let engine t = t.engine
let n_sites t = t.n_sites
let site_up t s = t.up.(s)

let trace t = t.trace

let set_trace t tr =
  t.trace <- tr;
  Trace.set_clock tr (fun () -> Engine.now t.engine)

let note t ~site kind =
  if Trace.enabled t.trace then ignore (Trace.emit t.trace ~site kind)

let crash t s =
  t.up.(s) <- false;
  note t ~site:s (Trace.Crash { site = s; amnesia = false })

let recover t s =
  t.up.(s) <- true;
  note t ~site:s (Trace.Recover { site = s; resynced = false });
  List.iter (fun f -> f s) t.recover_listeners

let stats t = t.stats
let note_rpc_timeout t = t.stats.rpc_timeouts <- t.stats.rpc_timeouts + 1

let set_router t r = t.router <- r

let router_allows t ~src ~dst =
  match t.router with None -> true | Some allows -> allows ~src ~dst

let on_rpc_result t f = t.rpc_result_listeners <- f :: t.rpc_result_listeners

let note_rpc_result t ~src ~dst ~ok ~elapsed =
  List.iter (fun f -> f ~src ~dst ~ok ~elapsed) t.rpc_result_listeners

let set_fail_slow t ~site mode =
  t.slow.(site) <- Some (mode, Engine.now t.engine);
  note t ~site (Trace.Slow_inject { site; mode = slow_mode_label mode })

let clear_fail_slow t ~site =
  if t.slow.(site) <> None then begin
    t.slow.(site) <- None;
    note t ~site (Trace.Slow_inject { site; mode = "healed" })
  end

let fail_slow t ~site = t.slow.(site) <> None

(* One leg's inflation factor. Draws from [rng] only while the site is
   actually slow (the heavy-tailed law flips a coin per message), so runs
   with no fail-slow faults consume exactly the historical random stream. *)
let slow_rate t rng ~site =
  match t.slow.(site) with
  | None -> 1.0
  | Some (Slow_constant f, _) -> f
  | Some (Slow_heavy { factor; p_tail; tail_factor }, _) ->
    if Rng.bernoulli rng p_tail then tail_factor else factor
  | Some (Slow_creeping { rate; cap }, since) ->
    Float.min cap (1.0 +. (rate *. (Engine.now t.engine -. since)))

let set_drop_probability t p = t.drop_probability <- p
let set_duplication t p = t.dup_probability <- p

let set_delay_spike t ~probability ~factor =
  t.spike_probability <- probability;
  t.spike_factor <- factor

let link_up t ~src ~dst = not (Hashtbl.mem t.blocked (src, dst))
let fail_link t ~src ~dst = Hashtbl.replace t.blocked (src, dst) ()
let heal_link t ~src ~dst = Hashtbl.remove t.blocked (src, dst)
let heal_all_links t = Hashtbl.reset t.blocked

let on_amnesia t f = t.amnesia_listeners <- f :: t.amnesia_listeners
let on_rejoin t f = t.rejoin_listeners <- f :: t.rejoin_listeners
let on_recover t f = t.recover_listeners <- f :: t.recover_listeners
let on_commit_window t f = t.commit_window_listeners <- f :: t.commit_window_listeners
let note_commit_window t ~site = List.iter (fun f -> f site) t.commit_window_listeners
let on_takeover t f = t.takeover_listeners <- f :: t.takeover_listeners
let note_takeover t ~site = List.iter (fun f -> f site) t.takeover_listeners
let on_storage_fault t f = t.storage_listeners <- f :: t.storage_listeners

let inject_storage_fault t ~site fault =
  t.stats.storage_faults <- t.stats.storage_faults + 1;
  note t ~site
    (Trace.Store_fault { site; fault = Atomrep_store.Wal.fault_label fault });
  List.iter (fun f -> f site fault) t.storage_listeners

let crash_with_amnesia t s =
  t.up.(s) <- false;
  note t ~site:s (Trace.Crash { site = s; amnesia = true });
  List.iter (fun f -> f s) t.amnesia_listeners

let set_resync_quorum t q = t.resync_quorum <- q

(* How many peers [s] could pull state from right now: up, same partition
   group, both link directions alive. [s] itself may still be down. *)
let resync_peers t s =
  let n = ref 0 in
  for peer = 0 to t.n_sites - 1 do
    if
      peer <> s && t.up.(peer)
      && t.groups.(peer) = t.groups.(s)
      && (not (Hashtbl.mem t.blocked (s, peer)))
      && not (Hashtbl.mem t.blocked (peer, s))
    then incr n
  done;
  !n

let recover_resync t s =
  if resync_peers t s >= t.resync_quorum then begin
    t.up.(s) <- true;
    note t ~site:s (Trace.Recover { site = s; resynced = true });
    List.iter (fun f -> f s) t.rejoin_listeners;
    List.iter (fun f -> f s) t.recover_listeners;
    true
  end
  else false

let set_skew_handler t f = t.skew_handler <- f
let inject_skew t ~site ~amount = t.skew_handler ~site ~amount

let partition t groups =
  note t ~site:(-1) (Trace.Partition { n_groups = List.length groups });
  let assignment = Array.make t.n_sites (-1) in
  List.iteri
    (fun g sites -> List.iter (fun s -> assignment.(s) <- g) sites)
    groups;
  (* Each unassigned site becomes its own singleton group: a site no group
     claims is isolated, not silently pooled with the other leftovers. *)
  let next = ref (List.length groups) in
  Array.iteri
    (fun s g ->
      if g = -1 then begin
        assignment.(s) <- !next;
        incr next
      end)
    assignment;
  t.groups <- assignment

let heal t =
  note t ~site:(-1) Trace.Heal;
  t.groups <- Array.make t.n_sites 0

let partitioned t =
  Hashtbl.length t.blocked > 0
  || (t.n_sites > 0 && Array.exists (fun g -> g <> t.groups.(0)) t.groups)

let reachable t a b =
  t.up.(a) && t.up.(b)
  && t.groups.(a) = t.groups.(b)
  && link_up t ~src:a ~dst:b
  && link_up t ~src:b ~dst:a

let send_impl t ~src ~dst thunk =
  let rng = Engine.rng t.engine in
  t.stats.sent <- t.stats.sent + 1;
  let sid =
    if Trace.enabled t.trace then
      Trace.emit t.trace ~site:src (Trace.Rpc_send { src; dst })
    else -1
  in
  let latency = Rng.exponential rng t.latency_mean in
  let same_site = src = dst in
  let dropped =
    (not same_site)
    && (t.groups.(src) <> t.groups.(dst)
       || (not (link_up t ~src ~dst))
       || Rng.bernoulli rng t.drop_probability)
  in
  if dropped then begin
    t.stats.dropped <- t.stats.dropped + 1;
    if Trace.enabled t.trace then
      ignore
        (Trace.emit t.trace ~site:src ~cause:sid
           (Trace.Rpc_drop { src; dst; reason = "link"; elapsed = 0.0 }))
  end
  else begin
    (* A delay spike stretches one message's latency, letting later sends
       overtake it: latency spikes double as message reordering. *)
    let latency =
      if t.spike_probability > 0.0 && Rng.bernoulli rng t.spike_probability then
        latency *. t.spike_factor
      else latency
    in
    (* Fail-slow inflation: a gray site both serves and emits slowly, so
       either endpoint being slow stretches the message. The guard keeps
       the healthy path draw-free. *)
    let latency =
      match (t.slow.(src), t.slow.(dst)) with
      | None, None -> latency
      | _ ->
        let f = slow_rate t rng ~site:src in
        let f = if same_site then f else f *. slow_rate t rng ~site:dst in
        latency *. f
    in
    let deliver delay =
      Engine.schedule t.engine ~delay (fun () ->
          if t.up.(dst) then begin
            if Trace.enabled t.trace then
              ignore
                (Trace.emit t.trace ~site:dst ~cause:sid
                   (Trace.Rpc_recv { src; dst }));
            thunk ()
          end
          else begin
            t.stats.dead_dest <- t.stats.dead_dest + 1;
            if Trace.enabled t.trace then
              ignore
                (Trace.emit t.trace ~site:dst ~cause:sid
                   (Trace.Rpc_drop { src; dst; reason = "dead_dest"; elapsed = delay }))
          end)
    in
    deliver latency;
    if (not same_site) && t.dup_probability > 0.0 && Rng.bernoulli rng t.dup_probability
    then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      deliver (Rng.exponential rng t.latency_mean)
    end
  end

let send t ~src ~dst thunk =
  let p = Atomrep_obs.Profile.current () in
  if Atomrep_obs.Profile.enabled p then
    Atomrep_obs.Profile.time p ~subsystem:"network" "send" (fun () ->
        send_impl t ~src ~dst thunk)
  else send_impl t ~src ~dst thunk

let up_sites t =
  List.filter (fun s -> t.up.(s)) (List.init t.n_sites Fun.id)
