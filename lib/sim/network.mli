(** Simulated network of sites with crashes, partitions and message loss
    (paper, §3: sites crash; links lose messages; long-lived failures cause
    partitions in which functioning sites cannot communicate).

    Messages are closures delivered at the destination after an
    exponentially distributed latency, unless the destination is down at
    delivery time, the message is dropped (link failure), or source and
    destination lie in different partition groups at send time. Beyond the
    basic model the network supports a chaos-testing fault surface:
    probabilistic message duplication, latency spikes (which reorder
    messages), asymmetric one-way link failures, and crash-with-amnesia
    where volatile state is lost while stable storage survives — the
    listeners let {!Atomrep_replica.Repository} owners model the paper's
    stable-storage split without the network knowing about repositories.

    A site that crashes plainly loses nothing it already handed to the
    application; only {!crash_with_amnesia} signals volatile-state loss. *)

type stats = {
  mutable sent : int; (** [send] calls *)
  mutable dropped : int; (** lost to partitions, failed links, or loss *)
  mutable duplicated : int; (** extra deliveries scheduled *)
  mutable dead_dest : int; (** arrived while the destination was down *)
  mutable rpc_timeouts : int; (** RPCs that gave up waiting (see {!Rpc}) *)
  mutable storage_faults : int; (** {!inject_storage_fault} calls *)
}

type slow_mode =
  | Slow_constant of float
      (** every message through the site takes [factor] times longer *)
  | Slow_heavy of { factor : float; p_tail : float; tail_factor : float }
      (** heavy-tailed: the base [factor] usually, but with probability
          [p_tail] a message draws the far worse [tail_factor] — the
          classic gray disk/NIC whose p99 explodes while its median only
          doubles *)
  | Slow_creeping of { rate : float; cap : float }
      (** creeping degradation: inflation grows linearly from 1.0 at
          [rate] per sim-time unit since onset, saturating at [cap] *)

type t

val create :
  Engine.t -> n_sites:int -> ?latency_mean:float -> ?drop_probability:float -> unit -> t

val engine : t -> Engine.t
val n_sites : t -> int

val site_up : t -> int -> bool
val crash : t -> int -> unit
val recover : t -> int -> unit

val crash_with_amnesia : t -> int -> unit
(** Crash the site and fire the {!on_amnesia} listeners: registered owners
    of volatile per-site state (lock tables, tentative log entries) drop
    it, while stable state survives. *)

val recover_resync : t -> int -> bool
(** Attempt recovery of an amnesiac site: if at least {!set_resync_quorum}
    peers are currently reachable, bring the site up, fire the
    {!on_rejoin} listeners (which model state transfer from reachable
    peers), and return [true]; otherwise leave it down and return [false]
    — the caller retries later. Gating rejoin on a resync quorum is what
    makes amnesia survivable: a lost tentative entry lives at some final
    quorum, and a resync set large enough to intersect every final quorum
    restores it before the site serves reads again. *)

val set_resync_quorum : t -> int -> unit
(** Peers an amnesiac site must reach before rejoining (default 0: rejoin
    unconditionally). For final quorums of size [f] on [n] sites, safety
    needs [n - f + 1]. *)

val on_amnesia : t -> (int -> unit) -> unit
val on_rejoin : t -> (int -> unit) -> unit

val on_recover : t -> (int -> unit) -> unit
(** Fired whenever a site comes back up — by {!recover} and by a
    successful {!recover_resync} (after the rejoin listeners). The
    termination layer uses this to replay the site's durable decision log
    and re-drive in-doubt transactions. *)

val on_commit_window : t -> (int -> unit) -> unit
(** Fired by {!note_commit_window}: a transaction homed at the site just
    entered its commit protocol. Targeted nemeses (coordinator killer)
    listen here; with no listener registered the note costs nothing and
    draws no randomness. *)

val note_commit_window : t -> site:int -> unit
(** Announce that a coordinator at [site] entered the [Committing]
    window (called unconditionally by the runtime). *)

val on_takeover : t -> (int -> unit) -> unit
(** Fired by {!note_takeover}: the site just started a takeover lease
    acquisition for a stuck transaction. Targeted nemeses (the
    takeover-storm's taker killer) listen here; with no listener the
    note costs nothing and draws no randomness. *)

val note_takeover : t -> site:int -> unit
(** Announce that [site] is bidding to take over a dead coordinator's
    in-doubt transaction. *)

val on_storage_fault : t -> (int -> Atomrep_store.Wal.fault -> unit) -> unit
(** Register an owner of per-site stable storage: fault schedules deliver
    storage faults through the network (like amnesia) so the simulator
    needs no knowledge of repositories or their WALs. *)

val inject_storage_fault : t -> site:int -> Atomrep_store.Wal.fault -> unit
(** Deliver a storage fault to the site's registered storage listeners and
    record a [Store_fault] trace event. A no-op (beyond the counter and the
    event) when nothing is registered or the site runs without a WAL. *)

val partition : t -> int list list -> unit
(** Install a partition: each list is a group; messages between different
    groups are lost. Every site not listed in any group forms its own
    singleton group (it is isolated). *)

val heal : t -> unit
(** Remove any partition. *)

val partitioned : t -> bool
(** Is connectivity currently degraded — a partition with more than one
    group in force, or any one-way failed link? The runtime samples this at
    the horizon for the {!Atomrep_obs.Trace.Quiesce} fairness signal that
    gates the liveness monitors. *)

val fail_link : t -> src:int -> dst:int -> unit
(** Fail the one-way link [src -> dst]: messages in that direction are
    dropped; the reverse direction is unaffected. *)

val heal_link : t -> src:int -> dst:int -> unit
val heal_all_links : t -> unit
val link_up : t -> src:int -> dst:int -> bool

val set_drop_probability : t -> float -> unit
val set_duplication : t -> float -> unit
(** Probability that a delivered message is delivered a second time, at an
    independently drawn latency. *)

val set_delay_spike : t -> probability:float -> factor:float -> unit
(** With the given probability a message's latency is multiplied by
    [factor], letting later messages overtake it (reordering). *)

val set_fail_slow : t -> site:int -> slow_mode -> unit
(** Install a persistent fail-slow ("gray") fault at the site: until
    {!clear_fail_slow}, every message into or out of the site has its
    latency inflated by the mode's law. Unlike a crash the site stays up,
    keeps answering probes, and never trips the binary failure detector —
    only latency-aware suspicion can see it. Emits a [Slow_inject] trace
    event. Installing a new mode over an old one replaces it (and resets
    the creeping-mode onset). *)

val clear_fail_slow : t -> site:int -> unit
(** Heal the site's fail-slow fault (no-op if none is installed). *)

val fail_slow : t -> site:int -> bool
(** Is a fail-slow fault currently installed at the site? *)

val set_skew_handler : t -> (site:int -> amount:int -> unit) -> unit
(** Install the handler {!inject_skew} forwards to. The runtime registers
    one that advances the site's Lamport clock, so fault schedules can
    inject bounded clock skew without a dependency on the clock layer. *)

val inject_skew : t -> site:int -> amount:int -> unit

val reachable : t -> int -> int -> bool
(** Both sites up, in the same partition group, and linked both ways. *)

val send : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver the closure at [dst] (it runs only if [dst] is up at delivery
    time). Loss, latency, duplication and partitions apply; sending to self
    delivers with latency but never drops or duplicates. *)

val up_sites : t -> int list

val stats : t -> stats
(** Live counters for this network instance (shared, mutable). *)

val note_rpc_timeout : t -> unit
(** Record one timed-out RPC (called by {!Rpc}). *)

val set_router : t -> (src:int -> dst:int -> bool) option -> unit
(** Install (or clear) an RPC routing policy. When present, {!Rpc.call}
    consults it before sending: a refused destination is answered
    immediately with a timeout-equivalent [None] reply, without drawing
    any network randomness. The circuit breaker installs itself here so
    quorum traffic stops burning the full RPC timeout on sites that keep
    timing out. [None] (the default) routes everything. *)

val router_allows : t -> src:int -> dst:int -> bool
(** The installed policy's verdict ([true] when no policy is set). *)

val on_rpc_result : t -> (src:int -> dst:int -> ok:bool -> elapsed:float -> unit) -> unit
(** Observe per-destination RPC outcomes: [ok:true] for a reply that
    arrived within the timeout, [ok:false] for a timeout. [elapsed] is the
    sim-time from issue to outcome (the full configured timeout for a
    timed-out call), which is what latency-aware suspicion scores — a
    timeout is a censored sample, not a missing one. Router refusals are
    NOT reported — a breaker feeding on its own refusals would never see
    the recovery it is probing for. *)

val note_rpc_result : t -> src:int -> dst:int -> ok:bool -> elapsed:float -> unit
(** Report one RPC outcome to the listeners (called by {!Rpc}). *)

val set_trace : t -> Atomrep_obs.Trace.t -> unit
(** Attach a trace bus: the network stamps it with the engine clock and
    emits RPC send/recv/drop, crash/recover, and partition/heal events.
    The default bus is {!Atomrep_obs.Trace.null} (disabled, no cost). *)

val trace : t -> Atomrep_obs.Trace.t
(** The attached bus — layers above the network (RPC timeouts, quorum
    logic, the runtime) emit through this so one simulation shares one
    causally linked trace. *)
