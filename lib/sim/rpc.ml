module Trace = Atomrep_obs.Trace

type hedge = {
  h_delay : unit -> float;
  h_spares : int list;
  h_max : int;
  h_on_hedge : dst:int -> unit;
  h_on_win : dst:int -> unit;
}

let call net ~src ~dst ~timeout ~handler ~reply =
  let engine = Network.engine net in
  if not (Network.router_allows net ~src ~dst) then begin
    (* Routed out (circuit breaker open): answer with the timeout verdict
       immediately — no sends, no latency draws, no timeout burn. The
       refusal is delivered asynchronously (zero-delay event) so callers
       see the same reply-after-return discipline as a real RPC, and it is
       NOT reported to the rpc-result listeners: a breaker feeding on its
       own refusals would never observe recovery. *)
    let tr = Network.trace net in
    if Trace.enabled tr then
      ignore
        (Trace.emit tr ~site:src
           (Trace.Rpc_drop { src; dst; reason = "breaker"; elapsed = 0.0 }));
    Engine.schedule engine ~delay:0.0 (fun () -> reply None)
  end
  else begin
    let start = Engine.now engine in
    let done_ = ref false in
    let finish ~ok result =
      if not !done_ then begin
        done_ := true;
        Network.note_rpc_result net ~src ~dst ~ok
          ~elapsed:(Engine.now engine -. start);
        reply result
      end
    in
    Network.send net ~src ~dst (fun () ->
        let response = handler () in
        Network.send net ~src:dst ~dst:src (fun () ->
            finish ~ok:true (Some response)));
    Engine.schedule engine ~delay:timeout (fun () ->
        if not !done_ then begin
          Network.note_rpc_timeout net;
          let tr = Network.trace net in
          if Trace.enabled tr then
            ignore
              (Trace.emit tr ~site:src
                 (Trace.Rpc_timeout
                    { src; dst; timeout; elapsed = Engine.now engine -. start }));
          finish ~ok:false None
        end)
  end

let multicast ?enough ?hedge ?on_late ?on_issue ?on_settle net ~src ~dsts
    ~timeout ~handler ~gather =
  let engine = Network.engine net in
  if dsts = [] then gather []
  else begin
    let received = ref [] in
    (* First successful reply per destination is the one that counts: a
       hedged re-issue and its slow original may both answer, and a gather
       that saw the same site twice would double-count its vote. *)
    let got = Hashtbl.create 8 in
    let pending = ref 0 in
    let finished = ref false in
    let tr = Network.trace net in
    let fire () =
      finished := true;
      (* The quorum round's synchronous half: reply gathering plus the
         caller's decision logic (vote counting, view merge, commit). *)
      Atomrep_obs.Profile.record ~subsystem:"quorum" "gather" (fun () ->
          gather (List.rev !received))
    in
    let complete () =
      if not !finished then
        if !pending = 0 then fire ()
        else
          (* Early-quorum: fire the moment a satisfying vote set has
             answered instead of awaiting every destination — a straggler
             then can't hold the round at its own pace. *)
          match enough with
          | Some satisfied when !received <> [] && satisfied (List.rev !received)
            ->
            fire ()
          | _ -> ()
    in
    let issue ~primary dst =
      let started = Engine.now engine in
      incr pending;
      (match on_issue with Some f -> f ~dst | None -> ());
      call net ~src ~dst ~timeout
        ~handler:(fun () -> handler dst)
        ~reply:(fun result ->
          decr pending;
          (* Settlement (reply or timeout) is reported before the gather
             can fire below, so a caller that defers per-site follow-up
             work to settlement sends it, on the all-or-timeout path, at
             exactly the moment it historically would. *)
          (match on_settle with Some f -> f ~dst | None -> ());
          let ok = match result with Some _ -> true | None -> false in
          if Trace.enabled tr then
            ignore
              (Trace.emit tr ~site:src
                 (Trace.Rpc_outcome
                    { src; dst; ok; elapsed = Engine.now engine -. started }));
          if !finished then begin
            (* Straggler after the gather already fired: its outcome is
               counted (event above, [on_late] below) but it must never
               re-drive [gather]. *)
            match on_late with Some f -> f ~dst ~ok | None -> ()
          end
          else begin
            (match result with
             | Some r when not (Hashtbl.mem got dst) ->
               Hashtbl.replace got dst ();
               received := (dst, r) :: !received;
               if not primary then
                 (match hedge with Some h -> h.h_on_win ~dst | None -> ())
             | _ -> ());
            complete ()
          end)
    in
    List.iter (fun dst -> issue ~primary:true dst) dsts;
    match hedge with
    | Some h when h.h_max > 0 ->
      let delay = h.h_delay () in
      Engine.schedule engine ~delay (fun () ->
          if not !finished then begin
            (* The round is lagging its adaptive percentile: hedge it.
               Destinations still lacking a reply are re-issued to first —
               a fresh send re-rolls a straggling link's latency draw —
               then spare members outside the round are enlisted as extra
               voters. First reply per site wins; handlers must be
               idempotent, which quorum repositories are (intend re-drops,
               log appends dedup). Destinations the router refuses
               (breaker open) are skipped — a hedge to a routed-out site
               would just burn the refusal. *)
            let fired = ref 0 in
            let consider dst =
              if
                !fired < h.h_max
                && (not (Hashtbl.mem got dst))
                && Network.router_allows net ~src ~dst
              then begin
                incr fired;
                if Trace.enabled tr then
                  ignore
                    (Trace.emit tr ~site:src (Trace.Rpc_hedge { src; dst; delay }));
                h.h_on_hedge ~dst;
                issue ~primary:false dst
              end
            in
            List.iter consider dsts;
            List.iter
              (fun spare -> if not (List.mem spare dsts) then consider spare)
              h.h_spares
          end)
    | _ -> ()
  end
