let call net ~src ~dst ~timeout ~handler ~reply =
  let engine = Network.engine net in
  if not (Network.router_allows net ~src ~dst) then begin
    (* Routed out (circuit breaker open): answer with the timeout verdict
       immediately — no sends, no latency draws, no timeout burn. The
       refusal is delivered asynchronously (zero-delay event) so callers
       see the same reply-after-return discipline as a real RPC, and it is
       NOT reported to the rpc-result listeners: a breaker feeding on its
       own refusals would never observe recovery. *)
    let tr = Network.trace net in
    if Atomrep_obs.Trace.enabled tr then
      ignore
        (Atomrep_obs.Trace.emit tr ~site:src
           (Atomrep_obs.Trace.Rpc_drop { src; dst; reason = "breaker" }));
    Engine.schedule engine ~delay:0.0 (fun () -> reply None)
  end
  else begin
    let done_ = ref false in
    let finish ~ok result =
      if not !done_ then begin
        done_ := true;
        Network.note_rpc_result net ~src ~dst ~ok;
        reply result
      end
    in
    Network.send net ~src ~dst (fun () ->
        let response = handler () in
        Network.send net ~src:dst ~dst:src (fun () ->
            finish ~ok:true (Some response)));
    Engine.schedule engine ~delay:timeout (fun () ->
        if not !done_ then begin
          Network.note_rpc_timeout net;
          let tr = Network.trace net in
          if Atomrep_obs.Trace.enabled tr then
            ignore
              (Atomrep_obs.Trace.emit tr ~site:src
                 (Atomrep_obs.Trace.Rpc_timeout { src; dst }));
          finish ~ok:false None
        end)
  end

let multicast net ~src ~dsts ~timeout ~handler ~gather =
  let expected = List.length dsts in
  if expected = 0 then gather []
  else begin
    let received = ref [] in
    let answered = ref 0 in
    let finished = ref false in
    let complete () =
      if (not !finished) && !answered = expected then begin
        finished := true;
        (* The quorum round's synchronous half: reply gathering plus the
           caller's decision logic (vote counting, view merge, commit). *)
        Atomrep_obs.Profile.record ~subsystem:"quorum" "gather" (fun () ->
            gather (List.rev !received))
      end
    in
    List.iter
      (fun dst ->
        call net ~src ~dst ~timeout
          ~handler:(fun () -> handler dst)
          ~reply:(fun result ->
            incr answered;
            (match result with
             | Some r -> received := (dst, r) :: !received
             | None -> ());
            complete ()))
      dsts
  end
