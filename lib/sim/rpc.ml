let call net ~src ~dst ~timeout ~handler ~reply =
  let engine = Network.engine net in
  let done_ = ref false in
  let finish result =
    if not !done_ then begin
      done_ := true;
      reply result
    end
  in
  Network.send net ~src ~dst (fun () ->
      let response = handler () in
      Network.send net ~src:dst ~dst:src (fun () -> finish (Some response)));
  Engine.schedule engine ~delay:timeout (fun () ->
      if not !done_ then begin
        Network.note_rpc_timeout net;
        let tr = Network.trace net in
        if Atomrep_obs.Trace.enabled tr then
          ignore
            (Atomrep_obs.Trace.emit tr ~site:src
               (Atomrep_obs.Trace.Rpc_timeout { src; dst }));
        finish None
      end)

let multicast net ~src ~dsts ~timeout ~handler ~gather =
  let expected = List.length dsts in
  if expected = 0 then gather []
  else begin
    let received = ref [] in
    let answered = ref 0 in
    let finished = ref false in
    let complete () =
      if (not !finished) && !answered = expected then begin
        finished := true;
        (* The quorum round's synchronous half: reply gathering plus the
           caller's decision logic (vote counting, view merge, commit). *)
        Atomrep_obs.Profile.record ~subsystem:"quorum" "gather" (fun () ->
            gather (List.rev !received))
      end
    in
    List.iter
      (fun dst ->
        call net ~src ~dst ~timeout
          ~handler:(fun () -> handler dst)
          ~reply:(fun result ->
            incr answered;
            (match result with
             | Some r -> received := (dst, r) :: !received
             | None -> ());
            complete ()))
      dsts
  end
