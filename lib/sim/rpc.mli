(** Request/response on top of {!Network} with timeouts.

    The absence of a response may mean the request was lost, the reply was
    lost, the recipient crashed, or the recipient is slow (paper, §3); the
    caller sees only a timeout. *)

type hedge = {
  h_delay : unit -> float;
      (** sim-time to wait before hedging, read when the round is issued —
          adaptive callers return a live latency percentile *)
  h_spares : int list;
      (** spare members outside the round to enlist as extra voters, in
          preference order, after the re-issues to unanswered destinations;
          spares already among the round's destinations are skipped *)
  h_max : int;  (** at most this many hedged requests per round *)
  h_on_hedge : dst:int -> unit;  (** a hedged request was issued *)
  h_on_win : dst:int -> unit;
      (** a hedged request's reply was the first its site delivered before
          the gather fired *)
}
(** Hedging policy for a {!multicast} round: if the round is still
    unsatisfied after [h_delay ()], issue up to [h_max] hedged requests —
    first re-issues to destinations still lacking a reply (a fresh send
    re-rolls a straggling link's latency draw), then to spare members
    outside the round. Handlers must be idempotent — a slow original's
    late reply and the hedge's reply may both be delivered (first reply
    per site wins; the duplicate is counted, never double-counted in the
    gather). Destinations the network router refuses (circuit breaker
    open) are skipped. *)

val call :
  Network.t ->
  src:int ->
  dst:int ->
  timeout:float ->
  handler:(unit -> 'resp) ->
  reply:('resp option -> unit) ->
  unit
(** Run [handler] at [dst]; deliver [Some response] back at [src], or [None]
    at [src] once [timeout] elapses without a response. [reply] runs exactly
    once. *)

val multicast :
  ?enough:((int * 'resp) list -> bool) ->
  ?hedge:hedge ->
  ?on_late:(dst:int -> ok:bool -> unit) ->
  ?on_issue:(dst:int -> unit) ->
  ?on_settle:(dst:int -> unit) ->
  Network.t ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  handler:(int -> 'resp) ->
  gather:((int * 'resp) list -> unit) ->
  unit
(** Call every destination in parallel; pass the successful
    (site, response) pairs to [gather], which runs exactly once (or not at
    all if the simulation horizon arrives first).

    Without [enough], [gather] fires when every destination has replied or
    timed out — the historical all-or-timeout behaviour. With [enough],
    the predicate is evaluated on the successful replies so far after each
    arrival, and [gather] fires the moment it is satisfied: an
    early-quorum round proceeds at the speed of the fastest satisfying
    vote set, not the slowest member. Replies arriving after [gather]
    fired are stragglers: each still emits an [Rpc_outcome] trace event
    and is reported to [on_late], but never re-drives [gather].

    [hedge] issues hedged requests once the round lags [h_delay]; hedged
    calls join the all-settled completion rule, so a round never gives up
    while a hedge it fired is still in flight.

    [on_issue] fires when a request (primary or hedged) is issued to a
    destination; [on_settle] fires exactly once per issued call when it
    settles — reply delivered or timeout expired — whether or not the
    gather already ran, and before any gather that settlement triggers. A
    destination that was hedged settles once per call, so callers should
    pair the two as a counter, not a flag. Together they let a caller
    sequence per-site follow-up traffic after the request's effect has
    landed at that site: an early-quorum gather runs while laggards'
    requests are still in flight, and simulated links reorder, so
    follow-ups broadcast at gather time could overtake the request they
    mean to undo. *)
