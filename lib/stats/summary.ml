type t = {
  mutable values : float list;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable sorted : float array option;
}

let create () =
  { values = []; n = 0; sum = 0.0; sum_sq = 0.0;
    vmin = infinity; vmax = neg_infinity; sorted = None }

let add t x =
  t.values <- x :: t.values;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.vmin then t.vmin <- x;
  if x > t.vmax then t.vmax <- x;
  t.sorted <- None

let count t = t.n
let total t = t.sum
let observations t = List.rev t.values
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else begin
    let n = float_of_int t.n in
    let m = t.sum /. n in
    let var = (t.sum_sq -. (n *. m *. m)) /. (n -. 1.0) in
    sqrt (max var 0.0)
  end

let min_value t = if t.n = 0 then 0.0 else t.vmin
let max_value t = if t.n = 0 then 0.0 else t.vmax

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.values in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t q =
  let a = sorted t in
  if Array.length a = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    (* Nearest rank is ceil(q*n); the epsilon guards against products like
       0.07 *. 100. = 7.000000000000001 ceiling one rank too high. *)
    let rank = ceil ((q *. float_of_int (Array.length a)) -. 1e-9) in
    let idx = int_of_float rank - 1 in
    let idx = max 0 (min idx (Array.length a - 1)) in
    a.(idx)
  end

let confidence95 t =
  if t.n < 2 then 0.0
  else 1.96 *. stddev t /. sqrt (float_of_int t.n)
