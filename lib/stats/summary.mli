(** Streaming summary statistics for simulation measurements. *)

type t
(** Accumulator over float observations. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float

val observations : t -> float list
(** Every recorded observation, in insertion order. *)

val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [0.] with fewer than two observations. *)

val min_value : t -> float
(** Smallest observation; [0.] when empty (never an infinity, so values
    serialize cleanly). *)

val max_value : t -> float
(** Largest observation; [0.] when empty. *)

val percentile : t -> float -> float
(** [percentile t q] by nearest-rank (rank [ceil q*n]) on the sorted
    sample; [q] is clamped to [\[0,1\]], so any [q] on a single-sample
    summary returns that sample and [0.] on an empty one. Retains all
    observations; intended for simulation-scale data. *)

val confidence95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean. *)
