(* Simulated segmented WAL.  See wal.mli for the model. *)

type fault = Torn_write | Bit_rot of int | Lost_flush | Disk_full | Disk_free

let fault_label = function
  | Torn_write -> "torn_write"
  | Bit_rot _ -> "bit_rot"
  | Lost_flush -> "lost_flush"
  | Disk_full -> "disk_full"
  | Disk_free -> "disk_free"

(* A durable cell is a payload plus its stored checksum.  [Torn] cells have
   no payload at all (the write never completed); they can never validate. *)
type 'a stored = Data of 'a | Ckpt of 'a list | Torn

type 'a cell = { stored : 'a stored; mutable sum : int }

(* Structural hash of the payload, standing in for a CRC over the record
   bytes.  Deterministic for a given value; bit rot flips the stored sum so
   detection is guaranteed rather than probabilistic. *)
let checksum stored = Hashtbl.hash_param 1024 1024 stored

let valid cell =
  match cell.stored with Torn -> false | _ -> cell.sum = checksum cell.stored

let cell stored = { stored; sum = checksum stored }

type 'a segment = { mutable cells : 'a cell list (* newest first *); mutable n : int }

type 'a recovery = {
  snapshot : 'a list;
  tail : 'a list;
  replayed : int;
  truncated : int;
  corrupt : bool;
  segments_scanned : int;
}

type stats = {
  mutable flushes : int;
  mutable flushed_records : int;
  mutable lost_flushes : int;
  mutable full_rejections : int;
  mutable torn_writes : int;
  mutable rotted : int;
  mutable checkpoints : int;
}

type 'a t = {
  segment_records : int;
  mutable segs : 'a segment list; (* oldest first *)
  mutable buffer : 'a list; (* newest first; volatile *)
  mutable since_ckpt : int;
  mutable torn_armed : bool;
  mutable lost_armed : bool;
  mutable full : bool;
  st : stats;
}

let create ?(segment_records = 32) () =
  if segment_records < 1 then invalid_arg "Wal.create: segment_records < 1";
  {
    segment_records;
    segs = [];
    buffer = [];
    since_ckpt = 0;
    torn_armed = false;
    lost_armed = false;
    full = false;
    st =
      {
        flushes = 0;
        flushed_records = 0;
        lost_flushes = 0;
        full_rejections = 0;
        torn_writes = 0;
        rotted = 0;
        checkpoints = 0;
      };
  }

let append t a = t.buffer <- a :: t.buffer

(* Tail segment with room, rolling a fresh one when needed. *)
let tail_segment t =
  match List.rev t.segs with
  | last :: _ when last.n < t.segment_records -> last
  | _ ->
      let s = { cells = []; n = 0 } in
      t.segs <- t.segs @ [ s ];
      s

let persist t stored =
  let s = tail_segment t in
  s.cells <- cell stored :: s.cells;
  s.n <- s.n + 1

let flush t =
  if t.buffer = [] then Ok 0
  else if t.full then begin
    t.st.full_rejections <- t.st.full_rejections + 1;
    Error `Disk_full
  end
  else begin
    let records = List.rev t.buffer in
    t.buffer <- [];
    if t.lost_armed then begin
      (* The device acknowledged the barrier but persisted nothing. *)
      t.lost_armed <- false;
      t.st.lost_flushes <- t.st.lost_flushes + 1;
      Ok (List.length records)
    end
    else begin
      List.iter (fun a -> persist t (Data a)) records;
      let k = List.length records in
      t.since_ckpt <- t.since_ckpt + k;
      t.st.flushes <- t.st.flushes + 1;
      t.st.flushed_records <- t.st.flushed_records + k;
      Ok k
    end
  end

let crash t =
  (match (t.torn_armed, t.buffer) with
  | true, _ :: _ when not t.full ->
      (* The head of the buffer was mid-write when power failed: its
         sector hit the platter but the record is incomplete. *)
      persist t Torn;
      t.since_ckpt <- t.since_ckpt + 1;
      t.st.torn_writes <- t.st.torn_writes + 1
  | _ -> ());
  t.torn_armed <- false;
  t.buffer <- []

let checkpoint t snapshot =
  if t.full then begin
    t.st.full_rejections <- t.st.full_rejections + 1;
    Error `Disk_full
  end
  else begin
    let dropped = List.length t.segs in
    let s = { cells = [ cell (Ckpt snapshot) ]; n = 1 } in
    t.segs <- [ s ];
    t.buffer <- [];
    t.since_ckpt <- 0;
    t.st.checkpoints <- t.st.checkpoints + 1;
    Ok dropped
  end

(* All durable cells oldest-first. *)
let all_cells t = List.concat_map (fun s -> List.rev s.cells) t.segs

let durable_size t = List.fold_left (fun n s -> n + s.n) 0 t.segs

let segments t = List.length t.segs

let records_since_checkpoint t = t.since_ckpt

let stats t = t.st

let inject t fault =
  match fault with
  | Torn_write -> t.torn_armed <- true
  | Lost_flush -> t.lost_armed <- true
  | Disk_full -> t.full <- true
  | Disk_free -> t.full <- false
  | Bit_rot i ->
      let size = durable_size t in
      if size > 0 then begin
        let victim = ((i mod size) + size) mod size in
        let c = List.nth (all_cells t) victim in
        c.sum <- c.sum lxor 1;
        t.st.rotted <- t.st.rotted + 1
      end

let recover t =
  t.buffer <- [];
  let segments_scanned = List.length t.segs in
  let cells = all_cells t in
  (* Valid prefix: everything before the first checksum failure. *)
  let rec split_valid acc = function
    | c :: rest when valid c -> split_valid (c :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let prefix, bad = split_valid [] cells in
  let truncated = List.length bad in
  let corrupt =
    match bad with
    | [] -> false
    | [ { stored = Torn; _ } ] -> false (* expected torn tail write *)
    | _ -> true
  in
  (* Physically truncate to the valid prefix so recovery is a fixpoint. *)
  if truncated > 0 then begin
    let rec rebuild segs = function
      | [] -> List.rev segs
      | cs ->
          let rec take k acc rest =
            if k = 0 then (List.rev acc, rest)
            else match rest with [] -> (List.rev acc, []) | c :: tl -> take (k - 1) (c :: acc) tl
          in
          let chunk, rest = take t.segment_records [] cs in
          rebuild ({ cells = List.rev chunk; n = List.length chunk } :: segs) rest
    in
    t.segs <- rebuild [] prefix
  end;
  (* Replay: newest valid checkpoint in the prefix restarts accumulation. *)
  let snapshot, rev_tail, tail_n =
    List.fold_left
      (fun (snap, tail, n) c ->
        match c.stored with
        | Ckpt s -> (s, [], 0)
        | Data a -> (snap, a :: tail, n + 1)
        | Torn -> (snap, tail, n))
      ([], [], 0) prefix
  in
  t.since_ckpt <- tail_n;
  {
    snapshot;
    tail = List.rev rev_tail;
    replayed = List.length snapshot + tail_n;
    truncated;
    corrupt;
    segments_scanned;
  }

(* Modeled recovery time: one seek per segment plus a per-record replay
   cost, in simulated milliseconds.  Deterministic by construction. *)
let seek_ms = 0.5
let replay_record_ms = 0.02

let recovery_cost_ms r =
  (seek_ms *. float_of_int r.segments_scanned)
  +. (replay_record_ms *. float_of_int r.replayed)
