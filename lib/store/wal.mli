(** Simulated per-site stable storage: a segmented, checksummed write-ahead
    log with an explicit volatile write buffer and [flush] (fsync) barriers.

    The model is deliberately storage-realistic but byte-free: records hold
    arbitrary OCaml payloads and "checksums" are structural hashes of the
    payload recorded alongside it.  What matters for the protocols built on
    top is the *shape* of failures, which is faithful:

    - [append] only buffers; nothing is durable until [flush] returns [Ok].
    - A [crash] discards the volatile buffer.  If a torn-write fault is
      armed, the first buffered record is additionally written to the tail
      of the durable log as a torn (checksum-invalid) record — modelling a
      partially persisted sector at the moment of the crash.
    - [recover] scans segments oldest-first, verifies each record's
      checksum, and truncates the durable log at the first invalid record.
      A single invalid record at the very tail is the expected torn-write
      case; an invalid record anywhere else is detected corruption
      (bit rot) and reported as such so callers can refuse to serve the
      log and take the resync path instead.
    - [checkpoint] atomically replaces all segments with a single snapshot
      record followed by a fresh tail segment, bounding both replay length
      and segment count.

    Injectable faults ({!fault}) cover torn tail writes, bit rot on durable
    records, flushes that report success but persist nothing (lost flush),
    and a full disk that rejects flushes/checkpoints until freed.

    The implementation is purely deterministic: no wall clock, no OS
    randomness.  Fault-site selection is the caller's job (the simulator
    draws from its seeded RNG). *)

type 'a t

(** Storage faults.  [inject] arms or applies them; see each constructor. *)
type fault =
  | Torn_write
      (** Arm: at the next [crash], the head of the volatile buffer is
          persisted as a torn (invalid-checksum) record at the tail. *)
  | Bit_rot of int
      (** Apply now: corrupt the checksum of durable record [i mod size]
          (no-op on an empty log).  Detection at [recover] is guaranteed. *)
  | Lost_flush
      (** Arm: the next [flush] returns [Ok] but persists nothing — the
          buffered records are silently dropped from durability. *)
  | Disk_full  (** Flushes and checkpoints fail with [`Disk_full]. *)
  | Disk_free  (** Clears [Disk_full]. *)

val fault_label : fault -> string

(** Result of [recover]. *)
type 'a recovery = {
  snapshot : 'a list;  (** payloads of the newest valid checkpoint, if any *)
  tail : 'a list;  (** valid data records after that checkpoint, in order *)
  replayed : int;  (** [List.length snapshot + List.length tail] *)
  truncated : int;  (** invalid/unreachable records physically dropped *)
  corrupt : bool;
      (** [true] iff an invalid record was found anywhere but the very
          tail — i.e. detected corruption rather than an expected torn
          tail write.  Callers must treat the site's suffix as lost and
          resync from peers. *)
  segments_scanned : int;
}

(** Cumulative counters (monotone over the life of the store). *)
type stats = {
  mutable flushes : int;  (** successful flush barriers *)
  mutable flushed_records : int;
  mutable lost_flushes : int;  (** flushes silently dropped by a fault *)
  mutable full_rejections : int;  (** flushes/checkpoints refused: disk full *)
  mutable torn_writes : int;  (** torn records persisted at crash *)
  mutable rotted : int;  (** bit-rot corruptions applied *)
  mutable checkpoints : int;
}

val create : ?segment_records:int -> unit -> 'a t
(** [segment_records] is the roll threshold per segment (default 32). *)

val append : 'a t -> 'a -> unit
(** Buffer a record.  Volatile until the next successful [flush]. *)

val flush : 'a t -> (int, [ `Disk_full ]) result
(** Persist the buffer to the tail segment.  Returns the number of records
    made durable ([Ok 0] on an empty buffer).  On [`Disk_full] the buffer
    is retained so a later flush can persist it. *)

val crash : 'a t -> unit
(** Lose the volatile buffer; persist a torn record first if armed. *)

val recover : 'a t -> 'a recovery
(** Scan, verify, truncate at the first invalid record, and return the
    valid prefix.  Physically truncates: a second crash+recover with no
    intervening writes returns exactly the same prefix (replay is a
    fixpoint).  Also clears any stale volatile buffer. *)

val checkpoint : 'a t -> 'a list -> (int, [ `Disk_full ]) result
(** [checkpoint t snapshot] atomically replaces every segment with a
    single checkpoint record holding [snapshot], dropping the volatile
    buffer (the snapshot must already cover it).  Returns the number of
    segments dropped. *)

val inject : 'a t -> fault -> unit
(** Arm or apply a fault; see {!fault}. *)

val records_since_checkpoint : 'a t -> int
(** Durable data records after the newest checkpoint (replay tail length —
    the quantity checkpointing exists to bound). *)

val durable_size : 'a t -> int
(** Total durable records (checkpoints included), for fault targeting. *)

val segments : 'a t -> int

val stats : 'a t -> stats

val recovery_cost_ms : 'a recovery -> float
(** Modeled (deterministic) recovery time: a per-segment seek cost plus a
    per-record replay cost.  Not wall clock. *)
