open Atomrep_history

type grant = { g_term : int; g_holder : int }

type result = Granted | Fenced of grant

type t = { grants : (Action.t, grant) Hashtbl.t }

let create () = { grants = Hashtbl.create 8 }

let current t action = Hashtbl.find_opt t.grants action

let term_of t action =
  match current t action with Some g -> g.g_term | None -> 0

let grant t action ~term ~holder =
  match current t action with
  | Some g when term < g.g_term -> Fenced g
  | Some g when term = g.g_term ->
    (* First writer wins a term: a re-grant to the same holder is an
       idempotent ack, a second contender proposing the taken term is
       fenced and must bid higher. *)
    if g.g_holder = holder then Granted else Fenced g
  | Some _ | None ->
    Hashtbl.replace t.grants action { g_term = term; g_holder = holder };
    Granted

let fences t action ~term =
  match current t action with
  | Some g when term < g.g_term -> Some g.g_term
  | Some _ | None -> None

let forget t = Hashtbl.reset t.grants
