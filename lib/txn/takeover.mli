(** Takeover leases: per-action monotone term grants.

    When cooperative termination adopts a dead coordinator's in-doubt
    transaction, the adopting site first wins a {e takeover lease}: a term
    number granted by a quorum of the object's repositories. Each
    repository keeps one grant cell per action and serves it monotonically
    — a proposal is granted only if its term is strictly higher than the
    cell's current term (or idempotently re-acknowledges the current
    holder). Quorum traffic stamped with a stale term is then refused at
    the repository ({!fences}), so a returning original coordinator
    (implicit term 0) or an out-bid contender halts instead of driving
    votes concurrently with the lease holder.

    Fencing is a liveness/clarity device, not the safety argument:
    agreement rests on the sticky-vote rule and the intersecting
    vote/veto thresholds (see DESIGN §3e–f). Grants are therefore kept
    volatile — a repository that crashes forgets them ({!forget}), which
    can only widen who may drive, never what can be decided. *)

open Atomrep_history

type grant = { g_term : int; g_holder : int }

type result = Granted | Fenced of grant

type t

val create : unit -> t

val current : t -> Action.t -> grant option
(** The cell's current grant, if any term was ever granted. *)

val term_of : t -> Action.t -> int
(** Current granted term; [0] when no lease was ever granted (the
    implicit term of the original coordinator). *)

val grant : t -> Action.t -> term:int -> holder:int -> result
(** Propose [term] for [holder]. [Granted] iff [term] is strictly higher
    than the current grant, or equals it with the same holder (idempotent
    ack). Otherwise [Fenced] with the winning grant, whose term the loser
    must out-bid. *)

val fences : t -> Action.t -> term:int -> int option
(** [Some granted_term] when a message stamped [term] must be refused
    ([term] is strictly below the current grant); [None] otherwise.
    Messages at or above the granted term pass — the holder votes with
    its own term. *)

val forget : t -> unit
(** Drop every grant (crash amnesia: lease state is volatile). *)
