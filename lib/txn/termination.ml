open Atomrep_history
open Atomrep_clock
module Wal = Atomrep_store.Wal

type mode = Disabled | Presumed_abort_only | Cooperative

let mode_name = function
  | Disabled -> "none"
  | Presumed_abort_only -> "presumed-abort-only"
  | Cooperative -> "cooperative"

let mode_of_string = function
  | "none" -> Some Disabled
  | "presumed-abort-only" | "presumed-abort" -> Some Presumed_abort_only
  | "cooperative" -> Some Cooperative
  | _ -> None

let enabled = function Disabled -> false | Presumed_abort_only | Cooperative -> true
let cooperative = function Cooperative -> true | Disabled | Presumed_abort_only -> false

type decision =
  | Intent of { action : Action.t; touched : string list; cts : Lamport.Timestamp.t }
  | Outcome of { action : Action.t; committed : bool }

type intent = { i_touched : string list; i_cts : Lamport.Timestamp.t }

type site_log = {
  wal : decision Wal.t;
  (* Durable intents that have no durable outcome yet — the in-doubt set.
     Mirrors stable storage exactly: indexed only after a successful
     flush, so a crash can never expose an intent the disk never saw. *)
  intents : (Action.t, intent) Hashtbl.t;
}

type t = { sites : site_log array; mutable writes : int }

let create ~n_sites () =
  {
    sites =
      Array.init n_sites (fun _ ->
          { wal = Wal.create (); intents = Hashtbl.create 8 });
    writes = 0;
  }

let writes t = t.writes

let flushed t d =
  let s = t.sites.(d) in
  match
    Atomrep_obs.Profile.record ~subsystem:"wal" "decision_flush" (fun () ->
        Wal.flush s.wal)
  with
  | Ok _ ->
    t.writes <- t.writes + 1;
    true
  | Error `Disk_full -> false

let log_intent t ~site ~action ~touched ~cts =
  let s = t.sites.(site) in
  Wal.append s.wal (Intent { action; touched; cts });
  if flushed t site then begin
    Hashtbl.replace s.intents action { i_touched = touched; i_cts = cts };
    true
  end
  else false

let log_outcome t ~site ~action ~committed =
  let s = t.sites.(site) in
  Wal.append s.wal (Outcome { action; committed });
  (* A failed outcome flush leaves the intent in doubt — redrive is
     idempotent, so resolving it again after recovery is harmless. *)
  if flushed t site then Hashtbl.remove s.intents action

let in_doubt t ~site =
  Hashtbl.fold
    (fun action i acc -> (action, i.i_touched, i.i_cts) :: acc)
    t.sites.(site).intents []
  |> List.sort (fun (a, _, _) (b, _, _) -> Action.compare a b)

let crash t ~site = Wal.crash t.sites.(site).wal

let recover t ~site =
  let s = t.sites.(site) in
  let r = Wal.recover s.wal in
  Hashtbl.reset s.intents;
  List.iter
    (function
      | Intent { action; touched; cts } ->
        Hashtbl.replace s.intents action { i_touched = touched; i_cts = cts }
      | Outcome { action; _ } -> Hashtbl.remove s.intents action)
    (r.Wal.snapshot @ r.Wal.tail);
  in_doubt t ~site
