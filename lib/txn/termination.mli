(** Crash-safe transaction termination: the coordinator's durable
    decision log.

    A coordinator that crashes between deciding a transaction's fate and
    broadcasting the decision would otherwise forget the transaction,
    stranding tentative entries at the repositories. This module gives
    every site a durable decision log (a {!Atomrep_store.Wal}): the
    coordinator WAL-logs a commit {!decision} [Intent] — flushed — before
    any commit record leaves the site, and an [Outcome] once the decision
    has been driven to the repositories. Recovery replays the log;
    intents without outcomes are the in-doubt set the recovered
    coordinator must re-drive. *)

open Atomrep_history
open Atomrep_clock

type mode =
  | Disabled  (** legacy best-effort termination: the historical give-up *)
  | Presumed_abort_only
      (** durable commit point + recovery redrive + presumed abort for
          stranded transactions that never logged an intent; blocked
          participants still wait for the coordinator *)
  | Cooperative
      (** [Presumed_abort_only] plus participant-driven cooperative
          termination (quorum vote rounds when the coordinator is
          unreachable) and the orphan reaper *)

val mode_name : mode -> string
val mode_of_string : string -> mode option

val enabled : mode -> bool
(** Any crash-safe termination at all — [mode <> Disabled]. The liveness
    monitors ({!Atomrep_chaos.Monitors}) only hold in-doubt transactions
    to an eventually-resolved obligation when some termination protocol
    exists to resolve them. *)

val cooperative : mode -> bool
(** Participant-driven termination is on — the only mode under which the
    stranded-entry gauge is required to drain to zero. *)

type decision =
  | Intent of {
      action : Action.t;
      touched : string list;
      cts : Lamport.Timestamp.t;
    }
      (** logged (and flushed) after prepare succeeds, before any commit
          record is sent; [cts] is the commit timestamp the decision is
          bound to *)
  | Outcome of { action : Action.t; committed : bool }
      (** logged once the decision reached the repositories; closes the
          in-doubt window *)

type t

val create : n_sites:int -> unit -> t
(** One decision log per site. *)

val log_intent :
  t ->
  site:int ->
  action:Action.t ->
  touched:string list ->
  cts:Lamport.Timestamp.t ->
  bool
(** Append + flush a commit intent. Returns [false] if the flush failed
    (disk full): the intent is NOT durable and the caller must abort the
    transaction rather than proceed to commit. *)

val log_outcome : t -> site:int -> action:Action.t -> committed:bool -> unit
(** Append + flush the outcome, closing the intent. A failed flush leaves
    the intent in doubt — redrive after a crash is idempotent. *)

val in_doubt :
  t -> site:int -> (Action.t * string list * Lamport.Timestamp.t) list
(** Durable intents with no durable outcome, in action order. *)

val crash : t -> site:int -> unit
(** The site crashed: drop the (always-empty, since every append is
    flushed) volatile buffer. *)

val recover :
  t -> site:int -> (Action.t * string list * Lamport.Timestamp.t) list
(** Replay the durable log, rebuild the in-doubt set from scratch, and
    return it — the transactions the recovered coordinator re-drives. *)

val writes : t -> int
(** Successful decision-log flushes (metrics). *)
