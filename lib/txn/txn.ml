open Atomrep_history
open Atomrep_clock

type status =
  | Running
  | Committing
  | Committed of Lamport.Timestamp.t
  | Aborted of string

type t = {
  action : Action.t;
  begin_ts : Lamport.Timestamp.t;
  home_site : int;
  mutable status : status;
  mutable touched : string list;
  mutable doomed : string option;
  mutable stranded : bool;
}

let create ~action ~begin_ts ~home_site =
  {
    action;
    begin_ts;
    home_site;
    status = Running;
    touched = [];
    doomed = None;
    stranded = false;
  }

let touch t name = if not (List.mem name t.touched) then t.touched <- t.touched @ [ name ]

let is_running t = match t.status with Running -> true | Committing | Committed _ | Aborted _ -> false

let pp_status ppf = function
  | Running -> Format.pp_print_string ppf "running"
  | Committing -> Format.pp_print_string ppf "committing"
  | Committed ts -> Format.fprintf ppf "committed@%a" Lamport.Timestamp.pp ts
  | Aborted why -> Format.fprintf ppf "aborted(%s)" why
