(** Transaction identities and lifecycle for the replicated runtime.

    Transactions are the paper's actions: they begin, execute operations
    against replicated objects through front-ends, and either commit —
    receiving a commit timestamp from a Lamport clock — or abort. *)

open Atomrep_history
open Atomrep_clock

type status =
  | Running
  | Committing
  | Committed of Lamport.Timestamp.t
  | Aborted of string (** reason *)

type t = {
  action : Action.t;
  begin_ts : Lamport.Timestamp.t;
  home_site : int; (** front-end site executing this transaction *)
  mutable status : status;
  mutable touched : string list; (** object names, in first-touch order *)
  mutable doomed : string option;
      (** deadlock victim sentence: the reason this transaction must abort
          at its next step (set by the detector, delivered by the runtime) *)
  mutable stranded : bool;
      (** the transaction's home site crashed mid-flight and its driver
          stopped; a recovery or termination protocol must resolve it *)
}

val create : action:Action.t -> begin_ts:Lamport.Timestamp.t -> home_site:int -> t
val touch : t -> string -> unit
val is_running : t -> bool
val pp_status : Format.formatter -> status -> unit
