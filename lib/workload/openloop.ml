(* Open-loop traffic plans: arrival schedules precomputed from their own
   seed, independent of the simulation engine's RNG. A closed-loop
   workload (the runtime's default Poisson process) implicitly backs off
   when the system slows — each arrival is drawn relative to the last, so
   a congested run simply spreads its offered load. Open-loop plans fix
   the offered load up front: arrivals keep coming at the planned rate no
   matter how the system is doing, which is what exposes the overload
   knee and the metastable retry-amplification regime.

   Everything here is pure planning: the generator draws only from the
   plan's private SplitMix64 stream, so the same seed yields the same
   schedule byte for byte regardless of scheme, admission settings, or
   how many domains the surrounding sweep runs on. The per-transaction
   scripts below draw nothing from the engine RNG either, so two runs
   over one plan differ only in the mechanism under test. *)

open Atomrep_spec
open Atomrep_stats
open Atomrep_replica
open Atomrep_core
open Atomrep_quorum

type curve =
  | Constant
  | Ramp of float
  | Diurnal of { trough : float; period : float }
  | Flash_crowd of { at : float; duration : float; mult : float }

let curve_name = function
  | Constant -> "constant"
  | Ramp _ -> "ramp"
  | Diurnal _ -> "diurnal"
  | Flash_crowd _ -> "flash-crowd"

(* Instantaneous rate multiplier at time [t] (fraction of the horizon
   elapsed handles Ramp without carrying the horizon everywhere). *)
let multiplier curve ~horizon t =
  match curve with
  | Constant -> 1.0
  | Ramp m ->
    let frac = if horizon <= 0.0 then 1.0 else t /. horizon in
    1.0 +. ((m -. 1.0) *. frac)
  | Diurnal { trough; period } ->
    (* Sinusoid between [trough] and 1, starting at the peak. *)
    let phase = 2.0 *. Float.pi *. t /. period in
    let mid = (1.0 +. trough) /. 2.0 in
    let amp = (1.0 -. trough) /. 2.0 in
    mid +. (amp *. cos phase)
  | Flash_crowd { at; duration; mult } ->
    if t >= at && t < at +. duration then mult else 1.0

let peak_multiplier = function
  | Constant -> 1.0
  | Ramp m -> Float.max 1.0 m
  | Diurnal _ -> 1.0
  | Flash_crowd { mult; _ } -> Float.max 1.0 mult

type profile = Read_mostly | Write_heavy | Queue_fanout

let profile_name = function
  | Read_mostly -> "read-mostly"
  | Write_heavy -> "write-heavy"
  | Queue_fanout -> "queue-fanout"

let profile_of_string = function
  | "read-mostly" -> Some Read_mostly
  | "write-heavy" -> Some Write_heavy
  | "queue-fanout" -> Some Queue_fanout
  | _ -> None

let read_ratio = function
  | Read_mostly -> 0.9
  | Write_heavy -> 0.1
  | Queue_fanout -> 0.5

(* Zipf(theta) over ranks 0..n-1: P(k) proportional to 1/(k+1)^theta.
   The cumulative table is tiny (one cell per object) and sampling is a
   binary search over it — one uniform draw per sample. theta = 0 is
   uniform; theta around 1 gives the classic heavy skew. *)
let zipf_cdf ~n ~theta =
  let n = max 1 n in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  let total = cdf.(n - 1) in
  Array.map (fun c -> c /. total) cdf

let zipf_sample rng ~cdf =
  let u = Rng.float rng 1.0 in
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

type t = {
  arrivals : float array;
  homes : int array;
  sessions : int array;
  classes : bool array; (* true = read *)
  objs : int array;
  pl_profile : profile;
  pl_n_objects : int;
}

let n_txns t = Array.length t.arrivals
let profile t = t.pl_profile
let n_objects t = t.pl_n_objects

let plan ?(curve = Constant) ?(profile = Queue_fanout) ?(n_objects = 1)
    ?(zipf_theta = 0.9) ?(n_sites = 3) ?(n_sessions = 6) ~seed ~rate ~horizon ()
    =
  let rng = Rng.create seed in
  let n_objects = max 1 n_objects
  and n_sessions = max 1 n_sessions
  and n_sites = max 1 n_sites in
  let cdf = zipf_cdf ~n:n_objects ~theta:zipf_theta in
  let peak = rate *. peak_multiplier curve in
  let r_read = read_ratio profile in
  (* Lewis–Shedler thinning: a homogeneous Poisson process at the peak
     rate, keeping each candidate with probability rate(t)/peak. The
     thinning draw happens even for Constant so switching curves at one
     seed reuses the same candidate skeleton. *)
  let arrivals = ref []
  and homes = ref []
  and sessions = ref []
  and classes = ref []
  and objs = ref []
  and count = ref 0 in
  let t = ref 0.0 in
  let continue = ref (peak > 0.0 && horizon > 0.0) in
  while !continue do
    t := !t +. Rng.exponential rng (1.0 /. peak);
    if !t >= horizon then continue := false
    else begin
      let keep = Rng.float rng 1.0 <= rate *. multiplier curve ~horizon !t /. peak in
      if keep then begin
        let session = Rng.int rng n_sessions in
        arrivals := !t :: !arrivals;
        sessions := session :: !sessions;
        homes := session mod n_sites :: !homes;
        objs := zipf_sample rng ~cdf :: !objs;
        classes := Rng.bernoulli rng r_read :: !classes;
        incr count
      end
    end
  done;
  let arr l = Array.of_list (List.rev l) in
  {
    arrivals = arr !arrivals;
    homes = arr !homes;
    sessions = arr !sessions;
    classes = arr !classes;
    objs = arr !objs;
    pl_profile = profile;
    pl_n_objects = n_objects;
  }

let target_name i = Printf.sprintf "o%d" i

let load t =
  let n = n_txns t in
  let safe a i default = if i >= 0 && i < n then a.(i) else default in
  {
    Runtime.arrivals = t.arrivals;
    home_of = (fun i -> safe t.homes i 0);
    session_of = (fun i -> safe t.sessions i 0);
    class_of = (fun i -> if safe t.classes i false then `Read else `Write);
  }

(* Scripts draw nothing from the engine RNG: the operation for index [i]
   is a pure function of the plan, so admission on/off (or scheme A/B)
   runs over one plan execute identical operation sequences. *)
let script t _rng i =
  if i < 0 || i >= n_txns t then []
  else begin
    let target = target_name (t.objs.(i) mod t.pl_n_objects) in
    let read = t.classes.(i) in
    match t.pl_profile with
    | Queue_fanout ->
      if read then [ { Runtime.target; invocation = Queue_type.deq_inv } ]
      else
        [
          {
            Runtime.target;
            invocation = Queue_type.enq_inv (if i land 1 = 0 then "x" else "y");
          };
        ]
    | Read_mostly | Write_heavy ->
      if read then [ { Runtime.target; invocation = Counter.read_inv } ]
      else if i land 1 = 0 then
        [ { Runtime.target; invocation = Counter.inc_inv } ]
      else [ { Runtime.target; invocation = Counter.dec_inv } ]
  end

let objects t ~n_sites =
  let majority = (n_sites / 2) + 1 in
  let q = { Assignment.initial = majority; final = majority } in
  List.init t.pl_n_objects (fun i ->
      match t.pl_profile with
      | Queue_fanout ->
        {
          Runtime.obj_name = target_name i;
          obj_spec = Queue_type.spec;
          obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
          obj_assignment =
            Assignment.make ~n_sites [ ("Enq", q); ("Deq", q) ];
          obj_members = None;
        }
      | Read_mostly | Write_heavy ->
        {
          Runtime.obj_name = target_name i;
          obj_spec = Counter.spec;
          obj_relation = Static_dep.minimal Counter.spec ~max_len:4;
          obj_assignment =
            Assignment.make ~n_sites
              [ ("Inc", q); ("Dec", q); ("Read", q) ];
          obj_members = None;
        })

(* One-call wiring: overwrite the config's workload fields with the
   plan's. Everything else (scheme, faults, timeouts, admission) stays
   the caller's choice. *)
let apply t (cfg : Runtime.config) =
  {
    cfg with
    Runtime.objects = objects t ~n_sites:cfg.Runtime.n_sites;
    n_txns = n_txns t;
    script = script t;
    load = Some (load t);
  }
