(** Open-loop traffic plans: precomputed arrival schedules with rate
    curves, Zipf object skew and per-session streams.

    The runtime's default workload is effectively closed-loop at the
    planning level: each Poisson inter-arrival is drawn from the engine
    RNG as the run executes, so schedules are entangled with everything
    else the engine draws. An open-loop plan is built entirely up front
    from its own seed — offered load never adapts to system state, which
    is the regime that exposes overload knees, goodput collapse and
    retry-amplification metastability (and makes A/B comparisons honest:
    admission on and off replay byte-identical arrival schedules and
    operation scripts).

    Determinism: {!plan} draws only from a private stream seeded by
    [seed]; the same arguments give the same plan regardless of scheme,
    admission settings, or how many domains a surrounding sweep uses.
    {!script} ignores its engine-RNG argument. *)

open Atomrep_stats
open Atomrep_replica

(** Offered-rate shape over the run, as a multiplier on the base rate. *)
type curve =
  | Constant
  | Ramp of float  (** linear from 1x at t=0 to the given multiple at horizon *)
  | Diurnal of { trough : float; period : float }
      (** sinusoid between [trough]x and 1x, starting at the peak *)
  | Flash_crowd of { at : float; duration : float; mult : float }
      (** 1x except a burst window \[at, at+duration) at [mult]x *)

val curve_name : curve -> string

val multiplier : curve -> horizon:float -> float -> float
(** Instantaneous rate multiplier at a time (exposed for tests). *)

type profile = Read_mostly | Write_heavy | Queue_fanout

val profile_name : profile -> string
val profile_of_string : string -> profile option

val read_ratio : profile -> float
(** Fraction of transactions classed [`Read]: 0.9 / 0.1 / 0.5. *)

val zipf_cdf : n:int -> theta:float -> float array
(** Cumulative distribution of Zipf(theta) over ranks [0..n-1]
    (P(k) proportional to 1/(k+1)^theta; theta 0 is uniform). *)

val zipf_sample : Rng.t -> cdf:float array -> int
(** One rank, by binary search over the cumulative table (one draw). *)

type t
(** A finished plan: arrival times plus per-transaction home site,
    session, read/write class and Zipf-ranked object. *)

val plan :
  ?curve:curve ->
  ?profile:profile ->
  ?n_objects:int ->
  ?zipf_theta:float ->
  ?n_sites:int ->
  ?n_sessions:int ->
  seed:int ->
  rate:float ->
  horizon:float ->
  unit ->
  t
(** Build a plan: a Poisson process at base [rate] (arrivals per
    simulated ms) shaped by [curve] via Lewis–Shedler thinning, truncated
    at [horizon]. Sessions are assigned uniformly and pinned to home site
    [session mod n_sites], so one session's commit timestamps come from
    one Lamport clock (the invariant the per-session monotonicity monitor
    checks). Defaults: constant curve, [Queue_fanout], 1 object,
    theta 0.9, 3 sites, 6 sessions. *)

val n_txns : t -> int
val profile : t -> profile
val n_objects : t -> int

val target_name : int -> string
(** Object [i]'s name, ["o<i>"]. *)

val load : t -> Runtime.load
(** The plan as the runtime's open-loop arrival table. *)

val script : t -> Rng.t -> int -> Runtime.op_request list
(** Per-transaction operations: queue enq/deq ([Queue_fanout]) or counter
    read/inc/dec, chosen by the plan's class and object arrays — the
    engine RNG argument is ignored, so scripts are identical across
    schemes and admission settings. *)

val objects : t -> n_sites:int -> Runtime.object_config list
(** Majority-quorum object configs matching {!script}'s targets. *)

val apply : t -> Runtime.config -> Runtime.config
(** Overwrite a config's workload fields ([objects], [n_txns], [script],
    [load]) with the plan's; everything else is untouched. *)
