(* Chaos subsystem: fault schedules, crash-amnesia recovery, campaign
   determinism, and the violation-reproducer workflow. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_sim
open Atomrep_replica
open Atomrep_chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fault schedules --- *)

let test_flap_cycles () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Fault.flap net ~site:1 ~start:10.0 ~every:50.0 ~down_for:20.0;
  let samples = ref [] in
  List.iter
    (fun t ->
      Engine.schedule engine ~delay:t (fun () ->
          samples := (t, Network.site_up net 1) :: !samples))
    [ 5.0; 15.0; 35.0; 85.0; 105.0 ];
  Engine.run ~until:120.0 engine;
  let expect t = List.assoc t (List.rev !samples) in
  (* Down windows: [10,30) from [start], then [80,100) — the next crash
     comes [every] after the recovery, not after the previous crash. *)
  check_bool "up before start" true (expect 5.0);
  check_bool "down in first window" false (expect 15.0);
  check_bool "up between windows" true (expect 35.0);
  check_bool "down in second window" false (expect 85.0);
  check_bool "up after second window" true (expect 105.0)

let test_one_way_outage_is_asymmetric () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Fault.one_way_outage net ~src:0 ~dst:1 ~every:10.0 ~duration:30.0;
  let forward = ref false and backward = ref false in
  Engine.schedule engine ~delay:15.0 (fun () ->
      Network.send net ~src:0 ~dst:1 (fun () -> forward := true);
      Network.send net ~src:1 ~dst:0 (fun () -> backward := true));
  (* Outage windows: [10,40), [50,80). A send at 45 lands in the healed
     gap and must get through. *)
  let healed = ref false in
  Engine.schedule engine ~delay:45.0 (fun () ->
      Network.send net ~src:0 ~dst:1 (fun () -> healed := true));
  Engine.run ~until:60.0 engine;
  check_bool "failed direction drops" false !forward;
  check_bool "reverse direction delivers" true !backward;
  check_bool "healed link delivers" true !healed

let test_clock_skew_schedule_fires () =
  let engine = Engine.create ~seed:3 in
  let net = Network.create engine ~n_sites:1 () in
  let injected = ref [] in
  Network.set_skew_handler net (fun ~site ~amount -> injected := (site, amount) :: !injected);
  Fault.clock_skew net ~site:0 ~every:25.0 ~max_skew:4;
  Engine.run ~until:260.0 engine;
  check_int "about ten injections" 10 (List.length !injected);
  check_bool "amounts bounded" true
    (List.for_all (fun (s, a) -> s = 0 && a >= 0 && a <= 4) !injected)

let test_rolling_partition_rotates () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:3 () in
  Fault.rolling_partition net ~every:50.0 ~duration:20.0;
  let first = ref None and second = ref None in
  (* First window isolates site 0, second isolates site 1. *)
  Engine.schedule engine ~delay:60.0 (fun () ->
      first := Some (Network.reachable net 0 1, Network.reachable net 1 2));
  Engine.schedule engine ~delay:130.0 (fun () ->
      second := Some (Network.reachable net 0 1, Network.reachable net 0 2));
  Engine.run ~until:150.0 engine;
  Alcotest.(check (option (pair bool bool)))
    "first window: 0 cut off, 1-2 fine" (Some (false, true)) !first;
  Alcotest.(check (option (pair bool bool)))
    "second window: 1 cut off, 0-2 fine" (Some (false, true)) !second

let test_duplication_and_counters () =
  let engine = Engine.create ~seed:7 in
  let net = Network.create engine ~n_sites:2 () in
  Network.set_duplication net 1.0;
  let deliveries = ref 0 in
  Network.send net ~src:0 ~dst:1 (fun () -> incr deliveries);
  Engine.run engine;
  check_int "duplicate delivered" 2 !deliveries;
  check_int "duplication counted" 1 (Network.stats net).Network.duplicated;
  (* Dead-destination deliveries are counted, not silently lost. *)
  Network.set_duplication net 0.0;
  Network.send net ~src:0 ~dst:1 (fun () -> ());
  Network.crash net 1;
  Engine.run engine;
  check_int "dead destination counted" 1 (Network.stats net).Network.dead_dest

let test_rpc_timeout_counter () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Network.crash net 1;
  Rpc.call net ~src:0 ~dst:1 ~timeout:20.0 ~handler:(fun () -> ()) ~reply:ignore;
  Engine.run engine;
  check_int "timeout counted" 1 (Network.stats net).Network.rpc_timeouts

(* --- crash-amnesia and recovery --- *)

let ts c = { Atomrep_clock.Lamport.Timestamp.counter = c; site = 0 }

let entry c name seq event =
  Log.Entry
    {
      Log.ets = ts c;
      action = Action.of_string name;
      begin_ts = ts c;
      seq;
      event;
    }

let test_repository_amnesia_keeps_stable_state () =
  let repo = Repository.create ~site:0 () in
  Repository.append repo [ entry 1 "A" 0 (Queue_type.enq "x") ];
  Repository.append repo [ entry 2 "B" 0 (Queue_type.enq "y") ];
  Repository.append repo [ Log.Commit_record (Action.of_string "A", ts 3) ];
  Repository.intend repo
    { Repository.i_action = Action.of_string "C"; i_op = "Deq"; i_bts = ts 4; i_seq = 0 };
  Repository.amnesia repo;
  check_int "lock table gone" 0 (List.length (Repository.intentions repo));
  let log = Repository.read repo in
  check_int "only the committed entry survives" 1 (List.length (Log.entries log));
  check_bool "commit record survives" true
    (Option.is_some (Log.commit_ts log (Action.of_string "A")))

let test_amnesia_rejoin_resyncs_from_peer () =
  let engine = Engine.create ~seed:5 in
  let net = Network.create engine ~n_sites:3 () in
  Network.set_resync_quorum net 2;
  let obj =
    Replicated.create ~name:"q" ~spec:Queue_type.spec ~scheme:Replicated.Hybrid
      ~relation:(Static_dep.minimal Queue_type.spec ~max_len:3)
      ~assignment:(Runtime.default_queue_assignment ~n_sites:3)
      ~net ()
  in
  (* Site 2 is down with amnesia while a commit is broadcast: it misses the
     record entirely, so only rejoin-time state transfer can supply it. *)
  Network.crash_with_amnesia net 2;
  Replicated.broadcast_status obj
    (Log.Commit_record (Action.of_string "T0", ts 5))
    ~reachable_from:0;
  Engine.run engine;
  check_bool "missed while down" true
    (Option.is_none
       (Log.commit_ts (Replicated.repository_log obj ~site:2) (Action.of_string "T0")));
  check_bool "rejoin accepted" true (Network.recover_resync net 2);
  check_bool "record restored by resync" true
    (Option.is_some
       (Log.commit_ts (Replicated.repository_log obj ~site:2) (Action.of_string "T0")))

let test_resync_quorum_gates_rejoin () =
  let engine = Engine.create ~seed:5 in
  let net = Network.create engine ~n_sites:3 () in
  Network.set_resync_quorum net 2;
  Network.crash_with_amnesia net 2;
  Network.crash net 1;
  check_bool "one peer is not enough" false (Network.recover_resync net 2);
  check_bool "still down" false (Network.site_up net 2);
  Network.recover net 1;
  check_bool "two peers suffice" true (Network.recover_resync net 2);
  check_bool "up again" true (Network.site_up net 2)

(* --- determinism: the replay guarantee reproducers depend on --- *)

let storm_cfg seed =
  let profile =
    match Campaign.find_profile "storm" with
    | Some p -> p
    | None -> Alcotest.fail "storm profile missing"
  in
  Campaign.configure ~base:Campaign.default_base ~scheme:Replicated.Static ~seed
    ~n_txns:25 ~intensity:1.0 profile

let test_identical_seeds_replay_identically () =
  let o1 = Runtime.run (storm_cfg 11) and o2 = Runtime.run (storm_cfg 11) in
  let m1 = o1.Runtime.metrics and m2 = o2.Runtime.metrics in
  check_int "committed" m1.Runtime.committed m2.Runtime.committed;
  check_int "aborted" m1.Runtime.aborted m2.Runtime.aborted;
  check_int "ops" m1.Runtime.ops_done m2.Runtime.ops_done;
  check_int "blocked waits" m1.Runtime.blocked_waits m2.Runtime.blocked_waits;
  check_int "messages sent" m1.Runtime.msgs_sent m2.Runtime.msgs_sent;
  check_int "messages dropped" m1.Runtime.msgs_dropped m2.Runtime.msgs_dropped;
  check_int "messages duplicated" m1.Runtime.msgs_duplicated m2.Runtime.msgs_duplicated;
  check_int "rpc timeouts" m1.Runtime.rpc_timeouts m2.Runtime.rpc_timeouts;
  check_bool "identical histories" true (o1.Runtime.histories = o2.Runtime.histories)

let test_different_seeds_differ () =
  let o1 = Runtime.run (storm_cfg 11) and o2 = Runtime.run (storm_cfg 12) in
  check_bool "different histories" false (o1.Runtime.histories = o2.Runtime.histories)

(* --- campaigns --- *)

let test_small_campaign_is_clean () =
  let profiles =
    List.filter
      (fun p -> List.mem p.Campaign.profile_name [ "amnesia"; "storm" ])
      Campaign.builtin_profiles
  in
  let report =
    Campaign.run_campaign
      ~schemes:[ Replicated.Static; Replicated.Hybrid ]
      ~profiles ~seeds:3 ()
  in
  check_int "all cells swept" 12 report.Campaign.total_runs;
  check_int "no violations" 0 (List.length report.Campaign.violations);
  check_bool "work was done" true
    (List.for_all (fun c -> c.Campaign.c_committed > 0) report.Campaign.cells)

(* An intentionally weakened dependency relation (the Deq-vs-Deq pairs
   dropped) lets two concurrent Deqs race through the read phase without
   meeting a conflicting intention, double-dequeueing an element. The
   campaign must catch it and shrink the reproducer. *)
let weakened_base =
  let spec = Queue_type.spec in
  let full = Static_dep.minimal spec ~max_len:4 in
  let weak =
    Relation.of_list
      (List.filter
         (fun ((inv : Event.Invocation.t), (e : Event.t)) ->
           not (String.equal inv.op "Deq" && String.equal e.inv.op "Deq"))
         (Relation.elements full))
  in
  {
    Campaign.default_base with
    Runtime.arrival_mean = 3.0;
    objects =
      [
        {
          Runtime.obj_name = "queue";
          obj_spec = spec;
          obj_relation = weak;
          obj_assignment = Runtime.default_queue_assignment ~n_sites:3;
            obj_members = None;
        };
      ];
  }

let test_weakened_relation_is_caught_and_shrunk () =
  let profiles =
    List.filter
      (fun p -> String.equal p.Campaign.profile_name "flaky")
      Campaign.builtin_profiles
  in
  let n_txns = 40 in
  let report =
    Campaign.run_campaign ~base:weakened_base ~n_txns
      ~schemes:[ Replicated.Static ] ~profiles ~seeds:10 ()
  in
  check_bool "campaign catches the weakened relation" true
    (report.Campaign.violations <> []);
  let v = List.hd report.Campaign.violations in
  check_bool "shrunk txn count" true (v.Campaign.v_n_txns <= n_txns);
  check_bool "shrunk reproducer still fails" true (v.Campaign.v_failures <> []);
  check_bool "reproducer line is self-contained" true
    (let line = Campaign.reproducer_line v in
     String.length line > 0
     && String.sub line 0 13 = "atomrep chaos");
  (* The reproducer tuple replays to the same verdict. *)
  let _, failures =
    Campaign.reproduce ~base:weakened_base ~scheme:v.Campaign.v_scheme
      ~profile:v.Campaign.v_profile ~seed:v.Campaign.v_seed
      ~n_txns:v.Campaign.v_n_txns ~intensity:v.Campaign.v_intensity ()
  in
  check_bool "reproducer replays deterministically" true (failures <> [])

let test_nemesis_scale_soft_limits () =
  let nem =
    Nemesis.Compose
      [
        Nemesis.Crash_storm { mtbf = 100.0; mttr = 50.0; amnesia = true };
        Nemesis.Flaky_links { drop = 0.2; dup = 0.2; spike = 0.2; one_way = false };
        Nemesis.Skew { every = 100.0; max_skew = 4 };
      ]
  in
  match Nemesis.scale 0.5 nem with
  | Nemesis.Compose
      [ Nemesis.Crash_storm c; Nemesis.Flaky_links f; Nemesis.Skew s ] ->
    check_bool "rarer crashes" true (c.mtbf > 100.0);
    check_bool "faster repairs" true (c.mttr < 50.0);
    check_bool "less loss" true (f.drop < 0.2);
    check_int "half the skew" 2 s.max_skew
  | _ -> Alcotest.fail "scale changed the nemesis shape"

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "flapping cycles" `Quick test_flap_cycles;
        Alcotest.test_case "one-way outage asymmetric" `Quick
          test_one_way_outage_is_asymmetric;
        Alcotest.test_case "clock-skew schedule" `Quick test_clock_skew_schedule_fires;
        Alcotest.test_case "rolling partition rotates" `Quick
          test_rolling_partition_rotates;
        Alcotest.test_case "duplication and counters" `Quick
          test_duplication_and_counters;
        Alcotest.test_case "rpc timeout counter" `Quick test_rpc_timeout_counter;
        Alcotest.test_case "amnesia keeps stable state" `Quick
          test_repository_amnesia_keeps_stable_state;
        Alcotest.test_case "rejoin resyncs from peers" `Quick
          test_amnesia_rejoin_resyncs_from_peer;
        Alcotest.test_case "resync quorum gates rejoin" `Quick
          test_resync_quorum_gates_rejoin;
        Alcotest.test_case "identical seeds replay identically" `Quick
          test_identical_seeds_replay_identically;
        Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
        Alcotest.test_case "small campaign clean" `Quick test_small_campaign_is_clean;
        Alcotest.test_case "weakened relation caught and shrunk" `Quick
          test_weakened_relation_is_caught_and_shrunk;
        Alcotest.test_case "nemesis intensity scaling" `Quick
          test_nemesis_scale_soft_limits;
      ] );
  ]
