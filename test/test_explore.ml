(* The seed-sweep explorer: shrink determinism (fresh monitor state per
   attempt), domain-count independence of sweep reports, and the pinned
   regression fixtures. *)

open Atomrep_replica
open Atomrep_chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let storm () =
  match Campaign.find_profile "storm" with
  | Some p -> p
  | None -> Alcotest.fail "storm profile missing"

(* The PR 1 bug, re-enabled: amnesiac sites rejoin without a resync
   quorum, so storm sweeps have real violations for the explorer to find. *)
let ungated_base = { Campaign.default_base with Runtime.ungated_rejoin = true }

let all_monitors = Monitors.registry

(* Shrinking replays monitor state from scratch on every candidate run, so
   shrinking the same seeded violation twice must land on the same minimal
   tuple with byte-identical failure witnesses — any bleed of monitor
   state across attempts would make the second pass judge candidates
   differently. *)
let test_shrink_twice_identical_witnesses () =
  let seeded =
    {
      Campaign.v_scheme = Replicated.Static;
      v_profile = storm ();
      v_seed = 5;
      v_n_txns = 60;
      v_intensity = 2.0;
      v_failures = [];
      v_postmortem = None;
    }
  in
  (* The seeded tuple really violates before we shrink it. *)
  let _, failures =
    Campaign.reproduce ~base:ungated_base ~monitors:all_monitors
      ~scheme:seeded.Campaign.v_scheme ~profile:seeded.Campaign.v_profile
      ~seed:seeded.Campaign.v_seed ~n_txns:seeded.Campaign.v_n_txns
      ~intensity:seeded.Campaign.v_intensity ()
  in
  check_bool "seeded tuple violates" true (failures <> []);
  let first = Campaign.shrink ~base:ungated_base ~monitors:all_monitors seeded in
  let second = Campaign.shrink ~base:ungated_base ~monitors:all_monitors seeded in
  check_int "same shrunk txn count" first.Campaign.v_n_txns second.Campaign.v_n_txns;
  check_bool "same shrunk intensity" true
    (first.Campaign.v_intensity = second.Campaign.v_intensity);
  check_int "same shrunk seed" first.Campaign.v_seed second.Campaign.v_seed;
  check_bool "shrunk reproducer still fails" true (first.Campaign.v_failures <> []);
  Alcotest.(check (list (pair string string)))
    "identical failure witnesses" first.Campaign.v_failures
    second.Campaign.v_failures

(* The sweep report is independent of how many domains ran it: totals and
   the violation list (tuples, failures, shrunk forms) must match between
   a sequential and a two-domain sweep of the same space. *)
let test_sweep_domain_determinism () =
  let sweep domains =
    Explore.sweep ~domains ~n_txns:40 ~max_shrinks:1 ~base:ungated_base
      ~schemes:[ Replicated.Static ]
      ~profiles:[ storm () ]
      ~seeds:10 ~intensities:[ 2.0 ] ()
  in
  let seq = sweep 1 and par = sweep 2 in
  check_int "one domain" 1 seq.Explore.x_domains;
  check_int "two domains" 2 par.Explore.x_domains;
  check_int "same task count" seq.Explore.x_tasks par.Explore.x_tasks;
  check_int "same committed total" seq.Explore.x_committed par.Explore.x_committed;
  check_int "same aborted total" seq.Explore.x_aborted par.Explore.x_aborted;
  check_int "same shrunk count" seq.Explore.x_shrunk par.Explore.x_shrunk;
  let tuple v =
    ( Replicated.scheme_name v.Campaign.v_scheme,
      v.Campaign.v_seed,
      v.Campaign.v_n_txns,
      v.Campaign.v_intensity,
      v.Campaign.v_failures )
  in
  check_bool "ungated sweep finds violations" true (seq.Explore.x_violations <> []);
  check_bool "identical violation lists" true
    (List.map tuple seq.Explore.x_violations
    = List.map tuple par.Explore.x_violations)

(* The pinned reproducers: the PR 1 double-dequeue tuple must still
   violate under the monitor catalogue, and the takeover adopt+fence tuple
   must run clean while actually adopting and fencing. *)
let test_fixture_replays () =
  List.iter
    (fun (f : Explore.fixture) ->
      let r = Explore.replay f in
      check_bool (f.Explore.f_name ^ " holds") true r.Explore.rr_ok;
      if f.Explore.f_expect_violation then
        check_bool
          (f.Explore.f_name ^ " reproduces its violation")
          true
          (r.Explore.rr_failures <> []))
    Explore.fixtures;
  check_bool "ungated_rejoin fixture is pinned" true
    (Explore.find_fixture "ungated_rejoin" <> None);
  check_bool "unknown fixtures are not found" true
    (Explore.find_fixture "no_such_fixture" = None)

let suites =
  [
    ( "explore",
      [
        Alcotest.test_case "shrink twice, identical witnesses" `Quick
          test_shrink_twice_identical_witnesses;
        Alcotest.test_case "sweep report independent of domain count" `Quick
          test_sweep_domain_determinism;
        Alcotest.test_case "regression fixtures replay" `Quick test_fixture_replays;
      ] );
  ]
