(* Tests for the extension modules: new data types, closed subhistories,
   programmatic comparisons, Monte-Carlo availability, weighted-voting
   enumeration, log garbage collection and anti-entropy. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_clock
open Atomrep_stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bounded buffer --- *)

let test_bounded_buffer_capacity () =
  let legal = Serial_spec.legal Bounded_buffer.spec in
  check_bool "fill to capacity" true
    (legal [ Bounded_buffer.enq "x"; Bounded_buffer.enq "y" ]);
  check_bool "third enq signals Full" true
    (legal
       [ Bounded_buffer.enq "x"; Bounded_buffer.enq "y"; Bounded_buffer.enq_full "x" ]);
  check_bool "third enq cannot succeed" false
    (legal [ Bounded_buffer.enq "x"; Bounded_buffer.enq "y"; Bounded_buffer.enq "x" ]);
  check_bool "deq makes room" true
    (legal
       [
         Bounded_buffer.enq "x"; Bounded_buffer.enq "y"; Bounded_buffer.deq_ok "x";
         Bounded_buffer.enq "x";
       ])

let test_bounded_buffer_fifo () =
  let legal = Serial_spec.legal Bounded_buffer.spec in
  check_bool "fifo order" true
    (legal [ Bounded_buffer.enq "x"; Bounded_buffer.enq "y"; Bounded_buffer.deq_ok "x" ]);
  check_bool "lifo illegal" false
    (legal [ Bounded_buffer.enq "x"; Bounded_buffer.enq "y"; Bounded_buffer.deq_ok "y" ])

let test_bounded_buffer_dependencies () =
  (* Capacity makes Enq depend on Deq;Ok even under commutativity: an Enq's
     success is invalidated by removing a Deq that made room. *)
  let dynamic = Dynamic_dep.minimal Bounded_buffer.spec ~max_len:4 in
  check_bool "Enq conflicts with Deq under dynamic" true
    (Relation.mem (Bounded_buffer.enq_inv "x", Bounded_buffer.deq_ok "y") dynamic);
  let unbounded = Dynamic_dep.minimal Queue_type.spec ~max_len:4 in
  check_bool "unbounded queue lacks that pair" false
    (Relation.mem (Queue_type.enq_inv "x", Queue_type.deq_ok "y") unbounded)

(* --- RSet --- *)

let test_rset_semantics () =
  let legal = Serial_spec.legal Rset.spec in
  check_bool "insert remove member" true
    (legal [ Rset.insert "x"; Rset.remove "x"; Rset.member "x" false ]);
  check_bool "remove of absent ok" true (legal [ Rset.remove "x"; Rset.member "x" false ]);
  check_bool "reinsert" true
    (legal [ Rset.insert "x"; Rset.remove "x"; Rset.insert "x"; Rset.member "x" true ])

let test_rset_per_item_independence () =
  let static = Static_dep.minimal Rset.spec ~max_len:3 in
  check_bool "same-item Member/Insert related" true
    (Relation.mem (Rset.member_inv "x", Rset.insert "x") static);
  check_bool "cross-item Member/Insert unrelated" false
    (Relation.mem (Rset.member_inv "x", Rset.insert "y") static);
  let dynamic = Dynamic_dep.minimal Rset.spec ~max_len:3 in
  check_bool "same-item Insert/Remove conflict" true
    (Relation.mem (Rset.insert_inv "x", Rset.remove "x") dynamic);
  check_bool "cross-item Insert/Remove commute" false
    (Relation.mem (Rset.insert_inv "x", Rset.remove "y") dynamic)

(* --- Closed subhistories (Definition 1) --- *)

let sample_history =
  Behavioral.of_script
    [
      ("A", `Begin);
      ("A", `Exec (Queue_type.enq "x"));
      ("B", `Begin);
      ("B", `Exec (Queue_type.enq "y"));
      ("A", `Exec (Queue_type.deq_ok "x"));
      ("A", `Commit);
      ("B", `Commit);
    ]

let queue_static = lazy (Static_dep.minimal Queue_type.spec ~max_len:4)

let test_closed_full_and_empty () =
  let rel = Lazy.force queue_static in
  check_bool "full selection closed" true
    (Closed_subhistory.is_closed rel sample_history ~keep:(fun _ -> true));
  check_bool "empty selection closed" true
    (Closed_subhistory.is_closed rel sample_history ~keep:(fun _ -> false))

let test_closed_violation () =
  let rel = Lazy.force queue_static in
  (* Selecting the Deq (index 2) without the Enqs it depends on is not
     closed: Deq ≽ Enq;Ok. *)
  check_bool "deq without enq not closed" false
    (Closed_subhistory.is_closed rel sample_history ~keep:(fun i -> i = 2))

let test_closure_pulls_dependencies () =
  let rel = Lazy.force queue_static in
  let closure = Closed_subhistory.closure rel sample_history [ 2 ] in
  (* The Deq pulls in both earlier Enqs. *)
  Alcotest.(check (list int)) "closure" [ 0; 1; 2 ] closure

let test_closure_already_closed () =
  let rel = Lazy.force queue_static in
  Alcotest.(check (list int)) "enq alone is closed" [ 0 ]
    (Closed_subhistory.closure rel sample_history [ 0 ])

let test_closed_selections_count () =
  let rel = Lazy.force queue_static in
  let selections = Closed_subhistory.closed_selections rel sample_history in
  (* Closed subsets of {Enq x, Enq y, Deq x}: {}, {0}, {1}, {0,1}, {0,1,2}.
     ({2} alone, {0,2}, {1,2} are not closed.) *)
  check_int "five closed selections" 5 (List.length selections);
  List.iter
    (fun s ->
      check_bool "each is closed" true
        (Closed_subhistory.is_closed rel sample_history ~keep:(fun i -> List.mem i s)))
    selections

let test_closed_aborted_exempt () =
  let h =
    Behavioral.of_script
      [
        ("A", `Begin);
        ("A", `Exec (Queue_type.enq "x"));
        ("A", `Abort);
        ("B", `Begin);
        ("B", `Exec Queue_type.deq_empty);
      ]
  in
  let rel = Lazy.force queue_static in
  (* Selecting the Deq;Empty without A's aborted Enq is fine: aborted
     actions are exempt from the closure condition. *)
  check_bool "aborted exempt" true
    (Closed_subhistory.is_closed rel h ~keep:(fun i -> i = 1))

let test_subhistory_drops_bookkeeping () =
  let g = Closed_subhistory.subhistory sample_history ~keep:(fun i -> i = 0) in
  (* Keeps only A's Enq — B's Begin/Commit disappear with its events. *)
  check_bool "well-formed" true (Behavioral.well_formed g);
  check_int "A's entries only" 3 (List.length g)

(* --- Compare (figures 1-1 / 1-2 programmatically) --- *)

let test_compare_concurrency_queue () =
  let report = Atomrep_experiments.Compare.concurrency ~samples:800 Queue_type.spec in
  check_bool "hybrid strictly contains dynamic" true
    (report.Atomrep_experiments.Compare.hybrid_vs_dynamic
     = Atomrep_experiments.Compare.Left_strictly_contains);
  check_bool "static and hybrid incomparable" true
    (report.Atomrep_experiments.Compare.static_vs_hybrid
     = Atomrep_experiments.Compare.Incomparable);
  check_bool "witness provided" true
    (Option.is_some report.Atomrep_experiments.Compare.witness_hybrid_not_static)

let test_compare_availability_prom () =
  let report =
    Atomrep_experiments.Compare.availability
      ~hybrid_relations:[ Paper.prom_hybrid_relation ] ~n_sites:3 Prom.spec
  in
  check_bool "hybrid admits strictly more (Thm 4+5)" true
    (report.Atomrep_experiments.Compare.static_vs_hybrid
     = Atomrep_experiments.Compare.Right_strictly_contains);
  check_bool "counts ordered" true
    (report.Atomrep_experiments.Compare.hybrid_count
     > report.Atomrep_experiments.Compare.static_count)

let test_compare_availability_doublebuffer () =
  let report =
    Atomrep_experiments.Compare.availability
      ~hybrid_relations:[ Static_dep.minimal Double_buffer.spec ~max_len:4 ]
      ~n_sites:3 Double_buffer.spec
  in
  check_bool "hybrid/dynamic incomparable (Thm 12)" true
    (report.Atomrep_experiments.Compare.hybrid_vs_dynamic
     = Atomrep_experiments.Compare.Incomparable)

(* --- Monte-Carlo availability --- *)

let prom_hybrid_assignment n =
  Assignment.make ~n_sites:n
    (List.map
       (fun (op, (i, f)) -> (op, { Assignment.initial = i; final = f }))
       (Paper.prom_hybrid_quorums ~n))

let test_montecarlo_agrees_with_binomial () =
  let n = 5 in
  let a = prom_hybrid_assignment n in
  let model = Montecarlo.uniform ~n ~p:0.9 in
  let rng = Rng.create 99 in
  (* The Monte-Carlo estimate conditions on the client's own site being up
     (the front-end runs there); the binomial formula does not. Compare
     against availability * p_client ... for Write (1 site) the client's
     site alone suffices, so estimate ≈ p. *)
  let est = Montecarlo.estimate rng ~trials:60_000 model ~client_site:0 a ~op:"Write" in
  check_bool "write estimate near 0.9" true (abs_float (est -. 0.9) < 0.02)

let test_montecarlo_partition_kills_full_quorum () =
  let n = 5 in
  let a =
    Assignment.make ~n_sites:n [ ("Seal", { Assignment.initial = n; final = n }) ]
  in
  let model =
    {
      Montecarlo.p_up = Array.make n 1.0;
      partition_probability = 1.0;
      groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ];
    }
  in
  let rng = Rng.create 5 in
  let est = Montecarlo.estimate rng ~trials:2_000 model ~client_site:0 a ~op:"Seal" in
  check_bool "always partitioned, never all-sites" true (est = 0.0)

let test_montecarlo_unlisted_sites_are_isolated () =
  (* Regression: sites absent from [groups] used to share one implicit
     group, so a permanently-partitioned model still let two unlisted
     sites reach each other. Each unlisted site is its own singleton. *)
  let n = 4 in
  let a =
    Assignment.make ~n_sites:n [ ("Write", { Assignment.initial = 2; final = 2 }) ]
  in
  let model =
    {
      Montecarlo.p_up = Array.make n 1.0;
      partition_probability = 1.0;
      groups = [ [ 0; 1 ] ];
    }
  in
  let rng = Rng.create 5 in
  (* Client at unlisted site 2: it must not reach unlisted site 3, so no
     2-of-4 quorum is ever available. *)
  let est = Montecarlo.estimate rng ~trials:2_000 model ~client_site:2 a ~op:"Write" in
  check_bool "unlisted sites cannot reach each other" true (est = 0.0);
  (* Client inside the listed group still finds its quorum. *)
  let est = Montecarlo.estimate rng ~trials:2_000 model ~client_site:0 a ~op:"Write" in
  check_bool "listed group unaffected" true (est = 1.0)

let test_montecarlo_partition_spares_singleton () =
  let n = 4 in
  let a =
    Assignment.make ~n_sites:n [ ("Write", { Assignment.initial = 1; final = 1 }) ]
  in
  let model =
    {
      Montecarlo.p_up = Array.make n 1.0;
      partition_probability = 1.0;
      groups = [ [ 0 ]; [ 1; 2; 3 ] ];
    }
  in
  let rng = Rng.create 5 in
  let est = Montecarlo.estimate rng ~trials:2_000 model ~client_site:0 a ~op:"Write" in
  check_bool "singleton quorum survives partition" true (est = 1.0)

(* --- Weighted enumeration --- *)

let test_weighted_enumerate_respects_constraints () =
  let constraints =
    [ { Op_constraint.dependent = "Read"; supplier = "Write"; labels = [ "Ok" ] } ]
  in
  let all = Weighted.enumerate ~weights:[| 2; 1; 1 |] ~ops:[ "Read"; "Write" ] constraints in
  check_bool "nonempty" true (all <> []);
  List.iter
    (fun w -> check_bool "satisfies" true (Weighted.satisfies w constraints))
    all

let test_weighted_beats_uniform_on_reliable_site () =
  let constraints =
    Op_constraint.of_relation (Static_dep.minimal Register.spec ~max_len:3)
  in
  let ops = [ "Read"; "Write" ] in
  let p_up = [| 0.99; 0.6; 0.6 |] in
  let mix = [ ("Read", 1.0); ("Write", 1.0) ] in
  let score all =
    match Weighted.best_for_mix ~p_up ~mix all with
    | None -> 0.0
    | Some best ->
      0.5 *. Weighted.availability_hetero best ~p_up "Read"
      +. 0.5 *. Weighted.availability_hetero best ~p_up "Write"
  in
  let uniform = score (Weighted.enumerate ~weights:[| 1; 1; 1 |] ~ops constraints) in
  let weighted = score (Weighted.enumerate ~weights:[| 3; 1; 1 |] ~ops constraints) in
  check_bool "weighted at least as good" true (weighted >= uniform -. 1e-9);
  check_bool "strictly better here" true (weighted > uniform +. 1e-6)

(* --- Log GC and anti-entropy --- *)

let ts n = { Lamport.Timestamp.counter = n; site = 0 }

let entry n action seq event =
  Atomrep_replica.Log.Entry
    {
      Atomrep_replica.Log.ets = ts n;
      action = Action.of_string action;
      begin_ts = ts n;
      seq;
      event;
    }

let test_log_gc_drops_aborted_entries () =
  let open Atomrep_replica in
  let a = Action.of_string "A" in
  let log =
    List.fold_left Log.add Log.empty
      [ entry 1 "A" 0 (Queue_type.enq "x"); entry 2 "B" 0 (Queue_type.enq "y");
        Log.Abort_record a ]
  in
  let compacted = Log.gc log in
  check_int "entry dropped" 1 (List.length (Log.entries compacted));
  check_bool "tombstone kept" true (Log.is_aborted compacted a)

let test_log_gc_tombstone_blocks_resurrection () =
  let open Atomrep_replica in
  let a = Action.of_string "A" in
  let stale = Log.add Log.empty (entry 1 "A" 0 (Queue_type.enq "x")) in
  let compacted = Log.gc (Log.add stale (Log.Abort_record a)) in
  (* Merging the stale replica back reintroduces the entry, but the
     tombstone still classifies it as aborted. *)
  let merged = Log.merge compacted stale in
  let view = View.classify merged in
  check_int "no tentative resurrection" 0 (List.length view.View.tentative)

let test_repository_ingest () =
  let open Atomrep_replica in
  let r1 = Repository.create ~site:0 () and r2 = Repository.create ~site:1 () in
  Repository.append r1 [ entry 1 "A" 0 (Queue_type.enq "x") ];
  Repository.append r2 [ Log.Commit_record (Action.of_string "A", ts 2) ];
  Repository.ingest r2 (Repository.read r1);
  check_bool "entry arrived" true
    (List.length (Log.entries (Repository.read r2)) = 1);
  (* And the commit record classifies it. *)
  let view = View.classify (Repository.read r2) in
  check_int "committed" 1 (List.length view.View.committed)

let test_anti_entropy_propagates () =
  let open Atomrep_replica in
  let open Atomrep_sim in
  let engine = Engine.create ~seed:3 in
  let net = Network.create engine ~n_sites:3 () in
  let obj =
    Replicated.create ~name:"q" ~spec:Queue_type.spec ~scheme:Replicated.Hybrid
      ~relation:(Static_dep.minimal Queue_type.spec ~max_len:3)
      ~assignment:
        (Assignment.make ~n_sites:3
           [ ("Enq", { Assignment.initial = 2; final = 2 });
             ("Deq", { Assignment.initial = 2; final = 2 }) ])
      ~net ()
  in
  (* Seed one repository only; gossip must spread the record everywhere. *)
  Replicated.broadcast_status obj
    (Log.Commit_record (Action.of_string "T0", ts 5))
    ~reachable_from:0;
  Replicated.start_anti_entropy obj ~rng:(Atomrep_stats.Rng.create 77) ~every:10.0;
  Engine.run ~until:2_000.0 engine;
  List.iter
    (fun site ->
      check_bool
        (Printf.sprintf "record at site %d" site)
        true
        (Option.is_some
           (Log.commit_ts (Replicated.repository_log obj ~site) (Action.of_string "T0"))))
    [ 0; 1; 2 ]

let test_runtime_with_anti_entropy_still_atomic () =
  let open Atomrep_replica in
  let cfg =
    {
      Runtime.default_config with
      seed = 31;
      n_txns = 40;
      anti_entropy_every = Some 20.0;
      install_faults =
        (fun net -> Atomrep_sim.Fault.crash_recover_all net ~mtbf:300.0 ~mttr:100.0);
    }
  in
  let outcome = Runtime.run cfg in
  Alcotest.(check (list (pair string string)))
    "atomic with gossip under faults" []
    (Runtime.check_atomicity cfg outcome)

let suites =
  [
    ( "extensions",
      [
        Alcotest.test_case "bounded buffer capacity" `Quick test_bounded_buffer_capacity;
        Alcotest.test_case "bounded buffer FIFO" `Quick test_bounded_buffer_fifo;
        Alcotest.test_case "bounded buffer dependencies" `Quick test_bounded_buffer_dependencies;
        Alcotest.test_case "rset semantics" `Quick test_rset_semantics;
        Alcotest.test_case "rset per-item independence" `Quick test_rset_per_item_independence;
        Alcotest.test_case "closed: full and empty" `Quick test_closed_full_and_empty;
        Alcotest.test_case "closed: violation" `Quick test_closed_violation;
        Alcotest.test_case "closure pulls dependencies" `Quick test_closure_pulls_dependencies;
        Alcotest.test_case "closure of closed set" `Quick test_closure_already_closed;
        Alcotest.test_case "closed selections" `Quick test_closed_selections_count;
        Alcotest.test_case "closed: aborted exempt" `Quick test_closed_aborted_exempt;
        Alcotest.test_case "subhistory bookkeeping" `Quick test_subhistory_drops_bookkeeping;
        Alcotest.test_case "compare: queue concurrency" `Slow test_compare_concurrency_queue;
        Alcotest.test_case "compare: PROM availability" `Quick test_compare_availability_prom;
        Alcotest.test_case "compare: DoubleBuffer incomparable" `Quick
          test_compare_availability_doublebuffer;
        Alcotest.test_case "montecarlo vs binomial" `Quick test_montecarlo_agrees_with_binomial;
        Alcotest.test_case "montecarlo: partition kills full quorum" `Quick
          test_montecarlo_partition_kills_full_quorum;
        Alcotest.test_case "montecarlo: singleton survives" `Quick
          test_montecarlo_partition_spares_singleton;
        Alcotest.test_case "montecarlo: unlisted sites isolated" `Quick
          test_montecarlo_unlisted_sites_are_isolated;
        Alcotest.test_case "weighted enumerate" `Quick test_weighted_enumerate_respects_constraints;
        Alcotest.test_case "weighted beats uniform" `Quick test_weighted_beats_uniform_on_reliable_site;
        Alcotest.test_case "log gc" `Quick test_log_gc_drops_aborted_entries;
        Alcotest.test_case "gc tombstones" `Quick test_log_gc_tombstone_blocks_resurrection;
        Alcotest.test_case "repository ingest" `Quick test_repository_ingest;
        Alcotest.test_case "anti-entropy propagates" `Quick test_anti_entropy_propagates;
        Alcotest.test_case "anti-entropy run atomic" `Slow test_runtime_with_anti_entropy_still_atomic;
      ] );
  ]
