(* Gray-failure resilience: the fail-slow fault model's latency
   inflation, the detector's graded slow-suspicion, the hedged
   early-quorum multicast (re-issue to stragglers, first-reply-per-site
   dedup, breaker-aware spares), slow-site demotion end to end, and the
   byte-identity contract: with the mitigation layer off, the runtime
   must replay the pre-gray fingerprints bit for bit. *)

open Atomrep_stats
open Atomrep_sim
open Atomrep_replica
module Campaign = Atomrep_chaos.Campaign
module Monitors = Atomrep_chaos.Monitors
module Trace = Atomrep_obs.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let to_alcotest = List.map QCheck_alcotest.to_alcotest

(* --- the byte-identity contract ---------------------------------------- *)

(* One run's deterministic signature: every counter the simulation's
   random stream touches. A single perturbed draw — an extra probe, a
   reordered send, a hedge that fired when the config said off —
   changes at least the message count or the duration. *)
let fingerprint cfg =
  let o = Runtime.run cfg in
  let m = o.Runtime.metrics in
  Printf.sprintf
    "c=%d a=%d ops=%d sent=%d drop=%d dup=%d dead=%d to=%d dur=%.6f latn=%d latmean=%.6f"
    m.Runtime.committed m.Runtime.aborted m.Runtime.ops_done m.Runtime.msgs_sent
    m.Runtime.msgs_dropped m.Runtime.msgs_duplicated m.Runtime.msgs_dead_dest
    m.Runtime.rpc_timeouts m.Runtime.duration
    (Summary.count m.Runtime.txn_latency)
    (Summary.mean m.Runtime.txn_latency)

let healthy_cfg ~scheme ~seed =
  { Runtime.default_config with Runtime.scheme; seed; n_txns = 40 }

let faulty_cfg ~scheme ~seed =
  let n_sites = 5 in
  {
    Runtime.default_config with
    Runtime.scheme;
    seed;
    n_txns = 40;
    n_sites;
    objects =
      [
        {
          Runtime.obj_name = "queue";
          obj_spec = Atomrep_spec.Queue_type.spec;
          obj_relation =
            Atomrep_core.Static_dep.minimal Atomrep_spec.Queue_type.spec
              ~max_len:4;
          obj_assignment = Runtime.default_queue_assignment ~n_sites;
          obj_members = None;
        };
      ];
    install_faults =
      (fun net -> Fault.crash_recover_all net ~mtbf:400.0 ~mttr:150.0);
  }

let reconfig_cfg ~scheme ~seed =
  {
    Campaign.reconfig_base with
    Runtime.scheme;
    seed;
    n_txns = 40;
    install_faults =
      (fun net -> Fault.crash_recover_all net ~mtbf:600.0 ~mttr:150.0);
  }

(* Golden fingerprints captured before the gray-failure layer landed:
   with [gray = None] (the default) the runtime must reproduce each of
   them exactly — the hedging machinery, the deferred-release plumbing
   and the fail-slow hooks may not perturb a single random draw. The
   healthy and faulty rows predate the PR unchanged; the reconfig rows
   were re-captured once, deliberately, when the detector's probe phase
   gained jitter (the thundering-herd satellite) — they encode the
   jittered schedule, which is itself part of the contract now. *)
let golden =
  [
    ( "healthy/static/seed0",
      healthy_cfg ~scheme:Replicated.Static ~seed:0,
      "c=40 a=0 ops=40 sent=1230 drop=0 dup=0 dead=0 to=0 dur=1640.578099 latn=40 latmean=105.121659"
    );
    ( "healthy/static/seed3",
      healthy_cfg ~scheme:Replicated.Static ~seed:3,
      "c=39 a=1 ops=39 sent=996 drop=0 dup=0 dead=0 to=0 dur=1160.177489 latn=39 latmean=42.042031"
    );
    ( "healthy/hybrid/seed0",
      healthy_cfg ~scheme:Replicated.Hybrid ~seed:0,
      "c=40 a=0 ops=40 sent=1395 drop=0 dup=0 dead=0 to=0 dur=1502.331424 latn=40 latmean=162.709839"
    );
    ( "healthy/hybrid/seed3",
      healthy_cfg ~scheme:Replicated.Hybrid ~seed:3,
      "c=40 a=0 ops=40 sent=1215 drop=0 dup=0 dead=0 to=0 dur=1416.673019 latn=40 latmean=112.319464"
    );
    ( "healthy/locking/seed0",
      healthy_cfg ~scheme:Replicated.Locking ~seed:0,
      "c=40 a=0 ops=40 sent=1752 drop=0 dup=0 dead=0 to=0 dur=2626.649363 latn=40 latmean=379.550765"
    );
    ( "healthy/locking/seed3",
      healthy_cfg ~scheme:Replicated.Locking ~seed:3,
      "c=40 a=0 ops=40 sent=1575 drop=0 dup=0 dead=0 to=0 dur=1790.217145 latn=40 latmean=293.033433"
    );
    ( "faulty/static/seed0",
      faulty_cfg ~scheme:Replicated.Static ~seed:0,
      "c=15 a=9 ops=17 sent=1599 drop=0 dup=0 dead=194 to=113 dur=999767.833124 latn=15 latmean=224.364066"
    );
    ( "faulty/hybrid/seed0",
      faulty_cfg ~scheme:Replicated.Hybrid ~seed:0,
      "c=14 a=14 ops=16 sent=1333 drop=0 dup=0 dead=121 to=79 dur=999888.050705 latn=14 latmean=111.388800"
    );
    ( "faulty/locking/seed3",
      faulty_cfg ~scheme:Replicated.Locking ~seed:3,
      "c=2 a=15 ops=2 sent=1034 drop=0 dup=0 dead=230 to=104 dur=999989.992655 latn=2 latmean=17.860524"
    );
    ( "reconfig/hybrid/seed0",
      reconfig_cfg ~scheme:Replicated.Hybrid ~seed:0,
      "c=29 a=10 ops=29 sent=2290 drop=0 dup=0 dead=172 to=157 dur=7999.448540 latn=29 latmean=65.571180"
    );
    ( "reconfig/locking/seed0",
      reconfig_cfg ~scheme:Replicated.Locking ~seed:0,
      "c=27 a=11 ops=28 sent=2374 drop=0 dup=0 dead=222 to=195 dur=7999.749521 latn=27 latmean=73.616916"
    );
  ]

let test_golden_fingerprints () =
  List.iter
    (fun (name, cfg, expected) -> check_string name expected (fingerprint cfg))
    golden

let test_dormant_fail_slow_is_free () =
  (* Wiring that never bites must never perturb: an injection scheduled
     past the horizon, and a constant inflation of exactly 1.0, both
     replay the untouched run bit for bit — set_fail_slow draws no RNG,
     and the constant law multiplies without drawing. *)
  List.iter
    (fun seed ->
      let base = healthy_cfg ~scheme:Replicated.Hybrid ~seed in
      let never =
        {
          base with
          Runtime.fail_slow = [ (1, 1.0e9, Network.Slow_constant 8.0) ];
        }
      in
      let unit_factor =
        {
          base with
          Runtime.fail_slow = [ (1, 0.0, Network.Slow_constant 1.0) ];
        }
      in
      let want = fingerprint base in
      check_string
        (Printf.sprintf "onset past horizon, seed %d" seed)
        want (fingerprint never);
      check_string
        (Printf.sprintf "factor 1.0, seed %d" seed)
        want (fingerprint unit_factor))
    [ 0; 3 ]

let scheme_gen =
  QCheck2.Gen.oneofl [ Replicated.Static; Replicated.Hybrid; Replicated.Locking ]

let prop_hedging_off_replays =
  QCheck2.Test.make ~name:"gray: hedging-off runs replay bit-identically"
    ~count:8
    QCheck2.Gen.(pair scheme_gen (int_bound 1_000))
    (fun (scheme, seed) ->
      let fp () =
        fingerprint
          { Runtime.default_config with Runtime.scheme; seed; n_txns = 12 }
      in
      fp () = fp ())

(* --- the fail-slow fault model ----------------------------------------- *)

let test_constant_inflation_scales_delivery () =
  let mean_delivery factor =
    let engine = Engine.create ~seed:2 in
    let net = Network.create engine ~n_sites:2 ~latency_mean:5.0 () in
    (match factor with
     | Some f -> Network.set_fail_slow net ~site:1 (Network.Slow_constant f)
     | None -> ());
    let total = ref 0.0 in
    let n = 200 in
    for _ = 1 to n do
      Network.send net ~src:0 ~dst:1 (fun () ->
          total := !total +. Engine.now engine)
    done;
    Engine.run ~until:1.0e9 engine;
    !total /. float_of_int n
  in
  let base = mean_delivery None and slow = mean_delivery (Some 8.0) in
  (* Same seed, same draws: the constant law multiplies each one by
     exactly the factor, so the ratio is exact, not statistical. *)
  check_bool "constant 8x inflates delivery by exactly 8x" true
    (Float.abs ((slow /. base) -. 8.0) < 1e-6)

let test_detector_flags_fail_slow_site () =
  let engine = Engine.create ~seed:7 in
  let net = Network.create engine ~n_sites:5 ~latency_mean:2.0 () in
  let det =
    Detector.start net
      ~rng:(Rng.split (Engine.rng engine))
      ~slow:Detector.default_slow_config ()
  in
  Engine.schedule_at engine ~time:500.0 (fun () ->
      Network.set_fail_slow net ~site:3 (Network.Slow_constant 8.0));
  Engine.run ~until:8_000.0 engine;
  (* An 8x-inflated site misses most 25ms probe budgets: it surfaces
     through the binary miss-streak verdict, the graded latency score,
     or both — either way the steering view must exclude it. *)
  let flagged = Detector.suspected det 3 || Detector.slow_suspected det 3 in
  let fast = Detector.fast_sites det in
  Detector.stop det;
  check_bool "the fail-slow site is flagged" true flagged;
  check_bool "steering avoids it" true (not (List.mem 3 fast));
  check_bool "healthy sites stay in the fast set" true
    (List.for_all (fun s -> List.mem s fast) [ 0; 1; 2; 4 ])

(* --- the hedged early-quorum multicast --------------------------------- *)

let test_straggler_never_redrives_gather () =
  let engine = Engine.create ~seed:11 in
  let net = Network.create engine ~n_sites:4 ~latency_mean:5.0 () in
  let gathers = ref 0 and gathered = ref [] and late = ref 0 in
  Rpc.multicast
    ~enough:(fun replies -> List.length replies >= 2)
    ~on_late:(fun ~dst:_ ~ok:_ -> incr late)
    net ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:1_000.0
    ~handler:(fun dst -> dst)
    ~gather:(fun replies ->
      incr gathers;
      gathered := replies);
  Engine.run ~until:5_000.0 engine;
  check_int "gather fired exactly once" 1 !gathers;
  check_int "at the satisfying set, not the full roster" 2
    (List.length !gathered);
  check_int "the straggler was reported late" 1 !late

let test_hedge_reissues_to_straggler_and_dedups () =
  let engine = Engine.create ~seed:5 in
  let net = Network.create engine ~n_sites:4 ~latency_mean:5.0 () in
  Network.set_fail_slow net ~site:3 (Network.Slow_constant 200.0);
  let hedged = ref [] and gathers = ref 0 and gathered = ref [] in
  let hedge =
    {
      Rpc.h_delay = (fun () -> 60.0);
      h_spares = [];
      h_max = 3;
      h_on_hedge = (fun ~dst -> hedged := dst :: !hedged);
      h_on_win = (fun ~dst:_ -> ());
    }
  in
  Rpc.multicast ~hedge net ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:20_000.0
    ~handler:(fun dst -> dst)
    ~gather:(fun replies ->
      incr gathers;
      gathered := replies);
  Engine.run ~until:100_000.0 engine;
  check_int "gather once, after every issued call settled" 1 !gathers;
  check_bool "the unanswered site was re-issued to" true (List.mem 3 !hedged);
  (* The slow original and its hedge both eventually answer: the site
     still votes exactly once. *)
  check_int "three unique voters" 3 (List.length !gathered);
  let sites = List.sort compare (List.map fst !gathered) in
  check_bool "no site counted twice" true
    (List.sort_uniq compare sites = sites)

let test_hedge_skips_breaker_open_site () =
  let engine = Engine.create ~seed:9 in
  let net = Network.create engine ~n_sites:4 ~latency_mean:5.0 () in
  Network.set_fail_slow net ~site:1 (Network.Slow_constant 30.0);
  Network.set_fail_slow net ~site:2 (Network.Slow_constant 30.0);
  (* Site 3 is routed out, as an open circuit breaker would: a hedge
     there would only burn the refusal. *)
  Network.set_router net (Some (fun ~src:_ ~dst -> dst <> 3));
  let hedged = ref [] and gathers = ref 0 in
  let hedge =
    {
      Rpc.h_delay = (fun () -> 50.0);
      h_spares = [ 3 ];
      h_max = 3;
      h_on_hedge = (fun ~dst -> hedged := dst :: !hedged);
      h_on_win = (fun ~dst:_ -> ());
    }
  in
  Rpc.multicast ~hedge net ~src:0 ~dsts:[ 1; 2 ] ~timeout:5_000.0
    ~handler:(fun dst -> dst)
    ~gather:(fun _ -> incr gathers);
  Engine.run ~until:20_000.0 engine;
  check_int "gather once" 1 !gathers;
  check_bool "both lagging primaries were re-issued to" true
    (List.mem 1 !hedged && List.mem 2 !hedged);
  check_bool "the routed-out spare was never hedged" true
    (not (List.mem 3 !hedged))

(* --- slow-site demotion and hedging, end to end ------------------------ *)

let gray_e2e_cfg ~gray ~trace ~seed =
  { (faulty_cfg ~scheme:Replicated.Hybrid ~seed) with
    Runtime.n_txns = 100;
    install_faults = (fun _ -> ());
    fail_slow = [ (2, 500.0, Network.Slow_constant 8.0) ];
    gray;
    trace = Some trace;
  }

let test_mitigation_beats_baseline () =
  let run gray =
    let trace = Trace.create ~n_sites:5 () in
    let cfg = gray_e2e_cfg ~gray ~trace ~seed:0 in
    let outcome = Runtime.run cfg in
    let violations = Monitors.run Monitors.registry { Monitors.cfg; outcome } trace in
    (outcome.Runtime.metrics, Atomrep_obs.Spec_monitor.failures violations)
  in
  let base, base_fails = run None in
  let mit, mit_fails = run (Some Runtime.default_gray) in
  check_int "baseline: full monitor catalogue green" 0 (List.length base_fails);
  check_int "mitigated: full monitor catalogue green" 0 (List.length mit_fails);
  check_bool "hedges fired" true (mit.Runtime.hedges > 0);
  check_bool "rounds were demoted around the slow site" true
    (mit.Runtime.demoted_rounds > 0);
  check_bool "the slow site was suspected" true
    (mit.Runtime.slow_suspicions > 0);
  check_bool "mitigation does not lose commits" true
    (mit.Runtime.committed >= base.Runtime.committed);
  let p99 m = Summary.percentile m.Runtime.txn_latency 0.99 in
  check_bool "p99 commit latency improves under one fail-slow site" true
    (p99 mit < p99 base)

let test_gray_storm_monitors_green () =
  (* The CI smoke in miniature: the gray base (hedging, demotion and
     latency scoring armed) under the gray_storm profile, judged by the
     full monitor catalogue — hedge_safety included, so a hedged
     duplicate surfacing as a double commit or conflicting verdicts
     would fail here first. *)
  let profile =
    match Campaign.find_profile "gray_storm" with
    | Some p -> p
    | None -> Alcotest.fail "gray_storm profile missing"
  in
  List.iter
    (fun seed ->
      let trace = Trace.create ~n_sites:3 () in
      let cfg =
        Campaign.configure ~base:Campaign.gray_base ~scheme:Replicated.Hybrid
          ~seed ~n_txns:40 ~intensity:1.0 ~trace profile
      in
      let outcome = Runtime.run cfg in
      let failures =
        Atomrep_obs.Spec_monitor.failures
          (Monitors.run Monitors.registry { Monitors.cfg; outcome } trace)
      in
      check_int (Printf.sprintf "seed %d green" seed) 0 (List.length failures))
    [ 0; 1; 2 ]

let suites =
  [
    ( "gray.identity",
      Alcotest.
        [
          test_case "golden fingerprints, hedging off" `Quick
            test_golden_fingerprints;
          test_case "dormant fail-slow wiring is free" `Quick
            test_dormant_fail_slow_is_free;
        ]
      @ to_alcotest [ prop_hedging_off_replays ] );
    ( "gray.failslow",
      Alcotest.
        [
          test_case "constant inflation scales delivery" `Quick
            test_constant_inflation_scales_delivery;
          test_case "detector flags the fail-slow site" `Quick
            test_detector_flags_fail_slow_site;
        ] );
    ( "gray.hedging",
      Alcotest.
        [
          test_case "straggler never re-drives the gather" `Quick
            test_straggler_never_redrives_gather;
          test_case "hedge re-issues to the straggler, dedups its vote"
            `Quick test_hedge_reissues_to_straggler_and_dedups;
          test_case "hedge skips a breaker-open site" `Quick
            test_hedge_skips_breaker_open_site;
        ] );
    ( "gray.endtoend",
      Alcotest.
        [
          test_case "hedging + demotion beat the baseline" `Quick
            test_mitigation_beats_baseline;
          test_case "gray_storm stays green under the full catalogue" `Quick
            test_gray_storm_monitors_green;
        ] );
  ]
