(* Cross-module integration tests: multi-operation transactions on one
   object (read-your-own-writes through the front-end cache), the Analysis
   umbrella, and harness registry sanity. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_replica

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A transaction that enqueues twice and dequeues once must dequeue its own
   first item: the Deq's view need not intersect the transaction's own
   final quorums — the front-end's per-action cache supplies them. *)
let test_read_your_own_writes scheme =
  let script _rng i =
    if i = 0 then
      [
        { Runtime.target = "queue"; invocation = Queue_type.enq_inv "x" };
        { Runtime.target = "queue"; invocation = Queue_type.enq_inv "y" };
        { Runtime.target = "queue"; invocation = Queue_type.deq_inv };
      ]
    else []
  in
  let cfg =
    { Runtime.default_config with scheme; n_txns = 1; seed = 5; script }
  in
  let outcome = Runtime.run cfg in
  check_int "committed" 1 outcome.Runtime.metrics.Runtime.committed;
  match outcome.Runtime.histories with
  | [ (_, history) ] ->
    let events = List.map fst (Behavioral.all_events history) in
    check_bool "dequeued own first enqueue" true
      (List.exists (Event.equal (Queue_type.deq_ok "x")) events);
    Alcotest.(check (list (pair string string)))
      "atomic" [] (Runtime.check_atomicity cfg outcome)
  | _ -> Alcotest.fail "expected one object"

let test_ryow_hybrid () = test_read_your_own_writes Replicated.Hybrid
let test_ryow_static () = test_read_your_own_writes Replicated.Static
let test_ryow_locking () = test_read_your_own_writes Replicated.Locking

(* Sequential transactions each doing several operations: the queue drains
   in FIFO order across transactions. *)
let test_multi_op_pipeline () =
  let script _rng i =
    match i with
    | 0 ->
      [
        { Runtime.target = "queue"; invocation = Queue_type.enq_inv "x" };
        { Runtime.target = "queue"; invocation = Queue_type.enq_inv "y" };
      ]
    | 1 ->
      [
        { Runtime.target = "queue"; invocation = Queue_type.deq_inv };
        { Runtime.target = "queue"; invocation = Queue_type.deq_inv };
      ]
    | _ -> [ { Runtime.target = "queue"; invocation = Queue_type.deq_inv } ]
  in
  let cfg =
    {
      Runtime.default_config with
      scheme = Replicated.Hybrid;
      n_txns = 3;
      seed = 9;
      arrival_mean = 300.0;
      (* well separated: deterministic order *)
      script;
    }
  in
  let outcome = Runtime.run cfg in
  check_int "all committed" 3 outcome.Runtime.metrics.Runtime.committed;
  match outcome.Runtime.histories with
  | [ (_, history) ] ->
    let events = List.map fst (Behavioral.all_events history) in
    check_bool "x then y dequeued, then empty" true
      (List.exists (Event.equal (Queue_type.deq_ok "x")) events
      && List.exists (Event.equal (Queue_type.deq_ok "y")) events
      && List.exists (Event.equal Queue_type.deq_empty) events)
  | _ -> Alcotest.fail "expected one object"

(* Conflict-retry exhaustion: two transactions that genuinely deadlock
   (each holding what the other needs) resolve by abort, and the system
   stays atomic. Forced by zero retries. *)
let test_retry_exhaustion_aborts () =
  let script _rng _ =
    [
      { Runtime.target = "queue"; invocation = Queue_type.enq_inv "x" };
      { Runtime.target = "queue"; invocation = Queue_type.deq_inv };
    ]
  in
  let cfg =
    {
      Runtime.default_config with
      scheme = Replicated.Locking;
      n_txns = 6;
      seed = 3;
      arrival_mean = 1.0 (* pile-up *);
      max_retries = 0;
      script;
    }
  in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_bool "some conflict aborts" true (m.Runtime.conflict_aborts > 0);
  Alcotest.(check (list (pair string string)))
    "still atomic" [] (Runtime.check_atomicity cfg outcome)

(* Exception responses travel the same path as normal ones: a replicated
   PROM answers Disabled before sealing, and a replicated bounded buffer
   answers Full — neither aborts the transaction. *)
let run_one_object ?(n_txns = 20) ~name ~spec ~ops script scheme seed =
  let majority =
    Atomrep_quorum.Assignment.make ~n_sites:3
      (List.map
         (fun op -> (op, { Atomrep_quorum.Assignment.initial = 2; final = 2 }))
         ops)
  in
  let cfg =
    {
      Runtime.default_config with
      scheme;
      n_txns;
      seed;
      objects =
        [
          {
            Runtime.obj_name = name;
            obj_spec = spec;
            obj_relation = Static_dep.minimal spec ~max_len:3;
            obj_assignment = majority;
            obj_members = None;
          };
        ];
      script;
    }
  in
  (cfg, Runtime.run cfg)

let test_replicated_prom () =
  let script rng i =
    if i = 10 then [ { Runtime.target = "prom"; invocation = Prom.seal_inv } ]
    else if Atomrep_stats.Rng.bool rng then
      [ { Runtime.target = "prom"; invocation = Prom.read_inv } ]
    else [ { Runtime.target = "prom"; invocation = Prom.write_inv "x" } ]
  in
  List.iter
    (fun scheme ->
      let cfg, outcome =
        run_one_object ~name:"prom" ~spec:Prom.spec ~ops:[ "Read"; "Seal"; "Write" ]
          script scheme 8
      in
      check_bool
        (Replicated.scheme_name scheme ^ " commits most")
        true
        (outcome.Runtime.metrics.Runtime.committed > 10);
      Alcotest.(check (list (pair string string)))
        (Replicated.scheme_name scheme ^ " atomic")
        [] (Runtime.check_atomicity cfg outcome);
      (* Disabled responses occurred (reads before the seal) and did not
         abort their transactions. *)
      match outcome.Runtime.histories with
      | [ (_, history) ] ->
        check_bool "some Disabled response" true
          (List.exists
             (fun (e, _) -> Event.equal e Prom.read_disabled)
             (Behavioral.all_events history))
      | _ -> Alcotest.fail "expected one object")
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ]

let test_replicated_bounded_buffer () =
  let script _rng i =
    (* Overfill, then drain: Full and Empty both exercised. *)
    if i < 4 then [ { Runtime.target = "buf"; invocation = Bounded_buffer.enq_inv "x" } ]
    else [ { Runtime.target = "buf"; invocation = Bounded_buffer.deq_inv } ]
  in
  let cfg, outcome =
    run_one_object ~n_txns:10 ~name:"buf" ~spec:Bounded_buffer.spec
      ~ops:[ "Enq"; "Deq" ] script Replicated.Hybrid 4
  in
  Alcotest.(check (list (pair string string)))
    "atomic" [] (Runtime.check_atomicity cfg outcome);
  match outcome.Runtime.histories with
  | [ (_, history) ] ->
    let events = List.map fst (Behavioral.all_events history) in
    check_bool "a Full response occurred" true
      (List.exists (Event.equal (Bounded_buffer.enq_full "x")) events)
  | _ -> Alcotest.fail "expected one object"

(* --- Analysis umbrella --- *)

let test_analysis_skip () =
  let a = Analysis.analyze ~max_len:4 Queue_type.spec in
  check_bool "static computed" true (Relation.cardinal a.Analysis.static_relation > 0);
  check_bool "dynamic computed" true (Relation.cardinal a.Analysis.dynamic_relation > 0);
  check_int "hybrid skipped" 0 (List.length a.Analysis.hybrid_minimal);
  check_bool "static relation is a static dependency relation" true
    (Analysis.is_static_dependency a a.Analysis.static_relation);
  check_bool "hybrid relation is not a static dependency relation" false
    (Analysis.is_static_dependency a Paper.prom_hybrid_relation)

let test_analysis_with_search () =
  let a =
    Analysis.analyze ~max_len:4
      ~hybrid:(Analysis.Search { max_events = 4; max_actions = 3; universe = None })
      Prom.spec
  in
  check_int "one minimal hybrid for PROM" 1 (List.length a.Analysis.hybrid_minimal);
  check_bool "it is the paper's" true
    (Relation.equal (List.hd a.Analysis.hybrid_minimal) Paper.prom_hybrid_relation);
  (* The report renders without error. *)
  check_bool "report nonempty" true
    (String.length (Format.asprintf "%a" Analysis.pp_report a) > 100)

(* --- Experiment registry --- *)

let test_experiment_registry () =
  let ids = List.map (fun (i, _, _) -> i) Atomrep_experiments.Experiments.all in
  check_int "thirteen experiments" 13 (List.length ids);
  check_int "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  check_bool "unknown id refused" false
    (Atomrep_experiments.Experiments.run_by_id "e99")

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "read your own writes (hybrid)" `Quick test_ryow_hybrid;
        Alcotest.test_case "read your own writes (static)" `Quick test_ryow_static;
        Alcotest.test_case "read your own writes (locking)" `Quick test_ryow_locking;
        Alcotest.test_case "multi-op pipeline" `Quick test_multi_op_pipeline;
        Alcotest.test_case "retry exhaustion aborts" `Quick test_retry_exhaustion_aborts;
        Alcotest.test_case "replicated PROM" `Slow test_replicated_prom;
        Alcotest.test_case "replicated bounded buffer" `Quick test_replicated_bounded_buffer;
        Alcotest.test_case "analysis (skip)" `Quick test_analysis_skip;
        Alcotest.test_case "analysis (search)" `Slow test_analysis_with_search;
        Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
      ] );
  ]
