(* Test runner: every module contributes suites. *)

let () =
  Alcotest.run "atomrep"
    (Test_value.suites @ Test_history.suites @ Test_spec.suites
   @ Test_atomicity.suites @ Test_relation.suites @ Test_static_dep.suites
   @ Test_dynamic_dep.suites @ Test_hybrid_dep.suites @ Test_paper.suites
   @ Test_quorum.suites @ Test_clock.suites @ Test_stats.suites
   @ Test_sim.suites @ Test_cc.suites @ Test_replica.suites
   @ Test_props.suites @ Test_extensions.suites @ Test_gifford.suites @ Test_golden.suites @ Test_integration.suites
   @ Test_chaos.suites @ Test_reconfig.suites @ Test_obs.suites @ Test_store.suites @ Test_termination.suites
   @ Test_takeover.suites @ Test_explore.suites @ Test_perfobs.suites
   @ Test_overload.suites @ Test_gray.suites)
