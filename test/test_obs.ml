(* Observability: trace bus stamps, span trees, exporters, the metrics
   registry, the tracing-off overhead guard, and the causal postmortem for
   the pre-fix amnesia double-dequeue. *)

open Atomrep_replica
open Atomrep_chaos
module Trace = Atomrep_obs.Trace
module Json = Atomrep_obs.Json
module Metrics = Atomrep_obs.Metrics
module Export = Atomrep_obs.Export
module Postmortem = Atomrep_obs.Postmortem

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let storm () =
  match Campaign.find_profile "storm" with
  | Some p -> p
  | None -> Alcotest.fail "storm profile missing"

(* A fault-free fixed-seed run with a bus attached. *)
let clean_traced_run () =
  let trace = Trace.create ~n_sites:3 () in
  let cfg =
    { Runtime.default_config with Runtime.seed = 42; n_txns = 30; trace = Some trace }
  in
  (trace, Runtime.run cfg)

(* A storm run with a bus attached: crashes, partitions, drops. *)
let storm_traced_run () =
  let trace = Trace.create ~n_sites:3 () in
  let cfg =
    Campaign.configure ~base:Campaign.default_base ~scheme:Replicated.Static
      ~seed:11 ~n_txns:25 ~intensity:1.0 ~trace (storm ())
  in
  (trace, Runtime.run cfg)

(* --- the bus itself --- *)

let test_disabled_bus_is_inert () =
  check_bool "null disabled" false (Trace.enabled Trace.null);
  check_int "emit returns -1" (-1)
    (Trace.emit Trace.null ~site:0 (Trace.Txn_begin { txn = "T0" }));
  check_int "span_begin returns -1" (-1) (Trace.span_begin Trace.null ~site:0 "txn");
  Trace.span_end Trace.null ~site:0 ~span:(-1) ~outcome:"done";
  check_int "nothing recorded" 0 (Trace.length Trace.null)

let test_emit_stamps_and_edges () =
  let tr = Trace.create ~n_sites:2 () in
  let a = Trace.emit tr ~site:0 (Trace.Txn_begin { txn = "T0" }) in
  let b = Trace.emit tr ~site:0 (Trace.Rpc_send { src = 0; dst = 1 }) in
  let c = Trace.emit tr ~site:1 ~cause:b (Trace.Rpc_recv { src = 0; dst = 1 }) in
  let ev i = Trace.get tr i in
  check_int "program-order lamport" 1 (ev a).Trace.lamport;
  check_int "second event advances" 2 (ev b).Trace.lamport;
  check_bool "prev chains the site" true ((ev b).Trace.prev = Some a);
  check_bool "delivery names its send" true ((ev c).Trace.cause = Some b);
  check_bool "delivery after send (lamport)" true
    ((ev c).Trace.lamport > (ev b).Trace.lamport);
  (* A negative cause (a disabled emit's id) is treated as absent. *)
  let d = Trace.emit tr ~site:1 ~cause:(-1) Trace.Heal in
  check_bool "negative cause dropped" true ((ev d).Trace.cause = None)

(* --- span trees from a real run --- *)

let test_span_tree_well_formed () =
  let trace, _ = clean_traced_run () in
  let spans = Trace.spans trace in
  check_bool "spans exist" true (spans <> []);
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl s.Trace.span_id s) spans;
  List.iter
    (fun s ->
      check_bool "closed at horizon" true (s.Trace.t_end <> None);
      check_bool "outcome recorded" true (s.Trace.span_outcome <> None);
      (match s.Trace.t_end with
       | Some te -> check_bool "non-negative duration" true (te >= s.Trace.t_begin)
       | None -> ());
      match s.Trace.span_parent with
      | None -> ()
      | Some p ->
        (match Hashtbl.find_opt tbl p with
         | None -> Alcotest.fail "span parent missing from the trace"
         | Some parent ->
           check_bool "parent opened first" true
             (parent.Trace.t_begin <= s.Trace.t_begin)))
    spans;
  (* Every transaction opens a txn span; ops and commits nest under it. *)
  let with_label l = List.filter (fun s -> s.Trace.label = l) spans in
  check_int "one txn span per transaction" 30 (List.length (with_label "txn"));
  check_bool "commit spans nest under txns" true
    (List.for_all (fun s -> s.Trace.span_parent <> None) (with_label "commit"))

let test_span_durations_feed_histograms () =
  let trace, outcome = clean_traced_run () in
  let durations = Trace.span_durations trace in
  check_bool "txn label present" true (List.mem_assoc "txn" durations);
  (* The runtime folds the same histograms into the registry. *)
  let scheme_l =
    [ ("scheme", Replicated.scheme_name Runtime.default_config.Runtime.scheme) ]
  in
  let s =
    Metrics.histogram_summary outcome.Runtime.registry ~labels:scheme_l "span.txn"
  in
  check_int "registry histogram matches" 30 (Atomrep_stats.Summary.count s)

(* --- Lamport discipline under chaos --- *)

let test_lamport_monotone_per_site () =
  let trace, _ = storm_traced_run () in
  check_bool "storm produced events" true (Trace.length trace > 100);
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.Trace.site with
       | Some l ->
         check_bool "strictly increasing per site" true (e.Trace.lamport > l)
       | None -> ());
      Hashtbl.replace last e.Trace.site e.Trace.lamport;
      (* Causal edges respect the clock condition. *)
      match e.Trace.cause with
      | Some c ->
        check_bool "cause happens-before (lamport)" true
          ((Trace.get trace c).Trace.lamport < e.Trace.lamport)
      | None -> ())
    (Trace.events trace)

(* --- exporters --- *)

let test_chrome_export_round_trips () =
  let trace, _ = storm_traced_run () in
  match Json.parse (Export.chrome_string trace) with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok doc ->
    (match Json.member "traceEvents" doc with
     | Some (Json.List entries) ->
       check_int "event count round-trips" (Export.expected_chrome_events trace)
         (List.length entries)
     | _ -> Alcotest.fail "traceEvents missing")

let test_jsonl_every_line_parses () =
  let trace, _ = clean_traced_run () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Export.jsonl trace))
  in
  check_int "one line per event" (Trace.length trace) (List.length lines);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("bad JSONL line: " ^ e))
    lines

let test_flame_mentions_span_labels () =
  let trace, _ = clean_traced_run () in
  let flame = Export.flame trace in
  let has needle =
    let nl = String.length needle and fl = String.length flame in
    let rec go i = i + nl <= fl && (String.sub flame i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "txn row" true (has "txn");
  check_bool "commit row" true (has "commit")

(* --- metrics registry --- *)

let test_registry_get_or_create () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg ~labels:[ ("scheme", "static"); ("reason", "x") ] "c" in
  (* Same identity under reordered labels: same underlying cell. *)
  let b = Metrics.counter reg ~labels:[ ("reason", "x"); ("scheme", "static") ] "c" in
  Metrics.incr a;
  Metrics.incr b;
  check_int "shared cell" 2
    (Metrics.counter_value reg ~labels:[ ("scheme", "static"); ("reason", "x") ] "c");
  check_int "absent identity reads 0" 0 (Metrics.counter_value reg "missing");
  let other = Metrics.counter reg ~labels:[ ("scheme", "hybrid") ] "c" in
  Metrics.add other 3;
  check_int "sum over label sets" 5 (Metrics.counter_sum reg "c")

let test_registry_json_parses () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg ~labels:[ ("scheme", "static") ] "txn.committed");
  Metrics.set (Metrics.gauge reg "sim.duration") 12.5;
  Metrics.observe (Metrics.histogram reg "txn.latency") 3.0;
  match Json.parse (Json.to_string (Metrics.to_json reg)) with
  | Error e -> Alcotest.fail ("metrics JSON invalid: " ^ e)
  | Ok doc ->
    check_bool "counters section" true (Json.member "counters" doc <> None);
    check_bool "gauges section" true (Json.member "gauges" doc <> None);
    check_bool "histograms section" true (Json.member "histograms" doc <> None)

let test_run_populates_registry () =
  let _, outcome = clean_traced_run () in
  let reg = outcome.Runtime.registry in
  let m = outcome.Runtime.metrics in
  check_int "committed counter is the projection's source" m.Runtime.committed
    (Metrics.counter_sum reg "txn.committed");
  check_int "ops counter" m.Runtime.ops_done (Metrics.counter_sum reg "op.done")

(* --- tracing-off overhead guard: bit-identical runs --- *)

let overhead_cfg trace =
  Campaign.configure ~base:Campaign.default_base ~scheme:Replicated.Static
    ~seed:3 ~n_txns:25 ~intensity:1.0 ?trace (storm ())

let test_tracing_off_is_metric_identical () =
  let off = Runtime.run (overhead_cfg None) in
  let on = Runtime.run (overhead_cfg (Some (Trace.create ~n_sites:3 ()))) in
  let m1 = off.Runtime.metrics and m2 = on.Runtime.metrics in
  check_int "committed" m1.Runtime.committed m2.Runtime.committed;
  check_int "aborted" m1.Runtime.aborted m2.Runtime.aborted;
  check_int "ops" m1.Runtime.ops_done m2.Runtime.ops_done;
  check_int "blocked waits" m1.Runtime.blocked_waits m2.Runtime.blocked_waits;
  check_int "messages sent" m1.Runtime.msgs_sent m2.Runtime.msgs_sent;
  check_int "messages dropped" m1.Runtime.msgs_dropped m2.Runtime.msgs_dropped;
  check_int "rpc timeouts" m1.Runtime.rpc_timeouts m2.Runtime.rpc_timeouts;
  check_bool "identical simulated duration" true
    (m1.Runtime.duration = m2.Runtime.duration);
  check_bool "identical histories" true (off.Runtime.histories = on.Runtime.histories)

(* --- causal postmortems --- *)

let test_actions_of_failure_tokens () =
  Alcotest.(check (list string))
    "tokens deduplicated in order" [ "T3"; "T12" ]
    (Postmortem.actions_of_failure "T3 overtakes T12 because T3 raced")

let test_causal_cone_walks_both_edges () =
  let tr = Trace.create ~n_sites:2 () in
  let a = Trace.emit tr ~site:0 (Trace.Txn_begin { txn = "T0" }) in
  let b = Trace.emit tr ~site:0 (Trace.Rpc_send { src = 0; dst = 1 }) in
  let c = Trace.emit tr ~site:1 ~cause:b (Trace.Rpc_recv { src = 0; dst = 1 }) in
  let unrelated = Trace.emit tr ~site:1 Trace.Heal in
  let cone = Postmortem.causal_cone tr ~targets:[ c ] in
  let ids = List.map (fun e -> e.Trace.id) cone in
  check_bool "target included" true (List.mem c ids);
  check_bool "cause pulled in" true (List.mem b ids);
  check_bool "program-order past pulled in" true (List.mem a ids);
  check_bool "future excluded" false (List.mem unrelated ids)

(* Replay the PR 1 double-dequeue: with quorum gating and commit piggyback
   both disabled ([ungated_rejoin]), a storm run loses a tentative append to
   crash-with-amnesia and the rejoined repository serves a stale view. The
   postmortem's causal slice must surface the whole mechanism: the amnesia
   crash, the ungated rejoin, and the tentative append that was lost.
   (Empirically verified violating tuple; the slice is a strict subset of
   the trace, so these are causal-cone facts, not whole-trace facts.) *)
let test_postmortem_slices_amnesia_violation () =
  let base = { Campaign.default_base with Runtime.ungated_rejoin = true } in
  let v =
    {
      Campaign.v_scheme = Replicated.Static;
      v_profile = storm ();
      v_seed = 41;
      v_n_txns = 60;
      v_intensity = 2.0;
      v_failures = [];
      v_postmortem = None;
    }
  in
  let trace, pm = Campaign.trace_violation ~base v in
  check_bool "oracle failure reproduced" true (pm.Postmortem.targets <> []);
  let n_slice = List.length pm.Postmortem.slice in
  check_bool "slice nonempty" true (n_slice > 0);
  check_bool "slice is a strict subset" true (n_slice < Trace.length trace);
  let has p = Postmortem.contains pm p in
  check_bool "cone holds the amnesia crash" true
    (has (function Trace.Crash { amnesia = true; _ } -> true | _ -> false));
  check_bool "cone holds the ungated rejoin" true
    (has (function Trace.Recover _ -> true | _ -> false));
  check_bool "cone holds the lost tentative append" true
    (has (function Trace.Repo_append { tentative = true; _ } -> true | _ -> false));
  let rendered = Postmortem.render pm in
  check_bool "render mentions the violating actions" true
    (String.length rendered > 0)

(* --- the spec-monitor DSL --- *)

module SM = Atomrep_obs.Spec_monitor

(* An empty trace discharges every spec: nothing is stepped, a single
   at_quiesce sees only its init state, and a keyed spec never even
   instantiates. *)
let test_spec_empty_trace () =
  let tr = Trace.create ~n_sites:1 () in
  let never =
    SM.make ~name:"never"
      ~init:(fun () -> ())
      ~step:(fun () _ -> SM.Violate ((), "stepped on an empty trace"))
      ()
  in
  check_bool "nothing stepped" true (SM.run never tr = []);
  let obligated =
    SM.keyed ~name:"per_txn"
      ~key:(fun _ -> Some "T0")
      ~init:(fun _ -> ())
      ~step:(fun () _ -> SM.Continue ())
      ~at_quiesce:(fun _ () -> [ "standing obligation" ])
      ()
  in
  check_bool "keyed: no instance, no obligation" true (SM.run obligated tr = [])

(* Events failing [on] never reach [step]; the quiesce check still judges
   what the filtered view amounted to. *)
let test_spec_on_filter () =
  let tr = Trace.create ~n_sites:1 () in
  ignore (Trace.emit tr ~site:0 (Trace.Txn_begin { txn = "T0" }));
  ignore (Trace.emit tr ~site:0 Trace.Heal);
  let commits_only =
    SM.make ~name:"commits_only"
      ~on:(SM.observes [ "txn_commit" ])
      ~init:(fun () -> 0)
      ~step:(fun n e ->
        match e.Trace.kind with
        | Trace.Txn_commit _ -> SM.Continue (n + 1)
        | _ -> SM.Violate (n, "stepped on an event outside [on]"))
      ~at_quiesce:(fun n ->
        if n = 1 then [] else [ Printf.sprintf "saw %d commit(s)" n ])
      ()
  in
  let vs = SM.run commits_only tr in
  check_int "only the quiesce obligation fires" 1 (List.length vs);
  check_bool "no step-anchored violation" true
    (List.for_all (fun v -> v.SM.v_event = None) vs);
  ignore (Trace.emit tr ~site:0 (Trace.Txn_commit { txn = "T0" }));
  check_bool "commit observed, spec discharged" true (SM.run commits_only tr = [])

(* Accept finalizes a keyed instance: its state is GC'd, and a later event
   under the same key allocates a fresh machine. *)
let test_spec_keyed_gc () =
  let open_close =
    SM.keyed ~name:"txn_open"
      ~on:(SM.observes [ "txn_begin"; "txn_commit" ])
      ~key:(fun e ->
        match e.Trace.kind with
        | Trace.Txn_begin { txn } | Trace.Txn_commit { txn } -> Some txn
        | _ -> None)
      ~init:(fun _ -> ())
      ~step:(fun () e ->
        match e.Trace.kind with
        | Trace.Txn_commit _ -> SM.Accept
        | _ -> SM.Continue ())
      ()
  in
  let tr = Trace.create ~n_sites:1 () in
  let inst = SM.instantiate open_close in
  let feed kind = SM.observe inst (Trace.get tr (Trace.emit tr ~site:0 kind)) in
  feed (Trace.Txn_begin { txn = "T0" });
  feed (Trace.Txn_begin { txn = "T1" });
  check_int "two live instances" 2 (SM.live_instances inst);
  feed (Trace.Txn_commit { txn = "T0" });
  check_int "accept GCs T0" 1 (SM.live_instances inst);
  feed (Trace.Txn_commit { txn = "T1" });
  check_int "accept GCs T1" 0 (SM.live_instances inst);
  feed (Trace.Txn_begin { txn = "T0" });
  check_int "reused key allocates a fresh machine" 1 (SM.live_instances inst);
  check_bool "no violations" true (SM.quiesce inst = [])

(* A violated child of a conjunction is short-circuited — one
   counterexample, no quiesce check — while its siblings keep observing
   every event and still get their own verdicts. *)
let test_spec_conjunction_short_circuit () =
  let steps = ref 0 in
  let tripwire =
    SM.make ~name:"tripwire"
      ~init:(fun () -> ())
      ~step:(fun () _ -> SM.Violate ((), "first event trips"))
      ~at_quiesce:(fun () -> [ "tripwire quiesce must be skipped" ])
      ()
  in
  let counter =
    SM.make ~name:"counter"
      ~init:(fun () -> ())
      ~step:(fun () _ ->
        incr steps;
        SM.Continue ())
      ~at_quiesce:(fun () -> [ Printf.sprintf "saw %d events" !steps ])
      ()
  in
  let both = SM.all ~name:"both" [ tripwire; counter ] in
  let tr = Trace.create ~n_sites:1 () in
  for _ = 1 to 3 do
    ignore (Trace.emit tr ~site:0 Trace.Heal)
  done;
  let names = List.map (fun v -> v.SM.v_monitor) (SM.run both tr) in
  check_int "tripwire contributes exactly one counterexample" 1
    (List.length (List.filter (String.equal "tripwire") names));
  check_int "sibling keeps stepping after the short-circuit" 3 !steps;
  check_bool "sibling's quiesce verdict still surfaces" true
    (List.mem "counter" names)

(* The ported commit-atomicity/common-order monitors must agree with the
   legacy untraced history oracles run for run: same verdict, same failure
   count. Random seeds on the ungated storm base so both clean and
   violating runs are exercised. *)
let prop_monitors_agree_with_legacy_oracles =
  QCheck2.Test.make ~name:"ported monitors agree with legacy oracles" ~count:25
    QCheck2.Gen.(pair (oneofl [ Replicated.Static; Replicated.Hybrid ]) (int_bound 999))
    (fun (scheme, seed) ->
      let base = { Campaign.default_base with Runtime.ungated_rejoin = true } in
      let cfg () =
        Campaign.configure ~base ~scheme ~seed ~n_txns:40 ~intensity:2.0 (storm ())
      in
      let monitors =
        match Monitors.of_names "commit_atomicity,common_order" with
        | Ok ms -> ms
        | Error e -> failwith e
      in
      let _, legacy = Campaign.check_run (cfg ()) in
      let _, ported = Campaign.check_run ~monitors (cfg ()) in
      (legacy = []) = (ported = []) && List.length legacy = List.length ported)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "disabled bus is inert" `Quick test_disabled_bus_is_inert;
        Alcotest.test_case "emit stamps and edges" `Quick test_emit_stamps_and_edges;
        Alcotest.test_case "span tree well-formed" `Quick test_span_tree_well_formed;
        Alcotest.test_case "span durations feed histograms" `Quick
          test_span_durations_feed_histograms;
        Alcotest.test_case "lamport monotone per site" `Quick
          test_lamport_monotone_per_site;
        Alcotest.test_case "chrome export round-trips" `Quick
          test_chrome_export_round_trips;
        Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_every_line_parses;
        Alcotest.test_case "flame mentions span labels" `Quick
          test_flame_mentions_span_labels;
        Alcotest.test_case "registry get-or-create" `Quick test_registry_get_or_create;
        Alcotest.test_case "registry json parses" `Quick test_registry_json_parses;
        Alcotest.test_case "run populates registry" `Quick test_run_populates_registry;
        Alcotest.test_case "tracing off is metric-identical" `Quick
          test_tracing_off_is_metric_identical;
        Alcotest.test_case "failure action tokens" `Quick test_actions_of_failure_tokens;
        Alcotest.test_case "causal cone walks both edges" `Quick
          test_causal_cone_walks_both_edges;
        Alcotest.test_case "postmortem slices the amnesia violation" `Quick
          test_postmortem_slices_amnesia_violation;
        Alcotest.test_case "spec DSL: empty trace" `Quick test_spec_empty_trace;
        Alcotest.test_case "spec DSL: events outside [on]" `Quick test_spec_on_filter;
        Alcotest.test_case "spec DSL: keyed-instance GC" `Quick test_spec_keyed_gc;
        Alcotest.test_case "spec DSL: conjunction short-circuit" `Quick
          test_spec_conjunction_short_circuit;
        QCheck_alcotest.to_alcotest prop_monitors_agree_with_legacy_oracles;
      ] );
  ]
