(* Graceful degradation under overload: open-loop plan determinism and
   the Zipf sampler (qcheck), the shed-safety and session-monotonicity
   monitors over hand-built traces, the per-site circuit breaker's state
   machine, and the admission-controlled runtime end to end — including
   the locking conflict-table regression the open-loop load exposed. *)

open Atomrep_stats
open Atomrep_replica
module Openloop = Atomrep_workload.Openloop
module Campaign = Atomrep_chaos.Campaign
module Monitors = Atomrep_chaos.Monitors
module Trace = Atomrep_obs.Trace
module SM = Atomrep_obs.Spec_monitor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = List.map QCheck_alcotest.to_alcotest

(* --- the Zipf sampler -------------------------------------------------- *)

let test_zipf_cdf_shape () =
  let cdf = Openloop.zipf_cdf ~n:16 ~theta:0.9 in
  check_int "one cell per rank" 16 (Array.length cdf);
  Array.iteri
    (fun i p ->
      if i > 0 then
        check_bool "cdf is nondecreasing" true (p >= cdf.(i - 1)))
    cdf;
  check_bool "cdf ends at 1" true (Float.abs (cdf.(15) -. 1.0) < 1e-9);
  check_bool "rank 0 is the hottest" true
    (cdf.(0) > 1.0 /. 16.0);
  (* theta 0 degenerates to uniform. *)
  let flat = Openloop.zipf_cdf ~n:10 ~theta:0.0 in
  Array.iteri
    (fun i p ->
      check_bool "uniform at theta 0" true
        (Float.abs (p -. (float_of_int (i + 1) /. 10.0)) < 1e-9))
    flat

let prop_zipf_sample_in_range_and_deterministic =
  QCheck.Test.make ~name:"zipf_sample: in range, same seed same draws"
    ~count:50
    QCheck.(pair (int_range 1 64) (int_range 0 10_000))
    (fun (n, seed) ->
      let cdf = Openloop.zipf_cdf ~n ~theta:0.9 in
      let draw rng = Array.init 32 (fun _ -> Openloop.zipf_sample rng ~cdf) in
      let a = draw (Rng.create seed) and b = draw (Rng.create seed) in
      Array.for_all (fun k -> k >= 0 && k < n) a && a = b)

(* --- open-loop plans --------------------------------------------------- *)

let curves =
  [
    Openloop.Constant;
    Openloop.Ramp 4.0;
    Openloop.Diurnal { trough = 0.3; period = 2_000.0 };
    Openloop.Flash_crowd { at = 1_000.0; duration = 500.0; mult = 6.0 };
  ]

let plan_of (seed, rate_pm, curve_i, profile_i) =
  Openloop.plan
    ~curve:(List.nth curves (curve_i mod List.length curves))
    ~profile:
      (List.nth
         [ Openloop.Read_mostly; Openloop.Write_heavy; Openloop.Queue_fanout ]
         (profile_i mod 3))
    ~n_objects:3 ~n_sites:3 ~n_sessions:6 ~seed
    ~rate:(0.001 +. (float_of_int rate_pm /. 1000.0 *. 0.009))
    ~horizon:4_000.0 ()

let prop_plan_deterministic =
  QCheck.Test.make
    ~name:"plan: same arguments, same schedule, script ignores engine RNG"
    ~count:30
    QCheck.(
      quad (int_range 0 1_000) (int_range 0 1_000) (int_range 0 3)
        (int_range 0 2))
    (fun args ->
      let p1 = plan_of args and p2 = plan_of args in
      let l1 = Openloop.load p1 and l2 = Openloop.load p2 in
      let n = Openloop.n_txns p1 in
      n = Openloop.n_txns p2
      && l1.Runtime.arrivals = l2.Runtime.arrivals
      && List.for_all
           (fun i ->
             l1.Runtime.home_of i = l2.Runtime.home_of i
             && l1.Runtime.session_of i = l2.Runtime.session_of i
             && l1.Runtime.class_of i = l2.Runtime.class_of i
             (* different, freshly seeded engine RNGs: the scripts must
                still be byte-identical across the two draws *)
             && Openloop.script p1 (Rng.create 1) i
                = Openloop.script p2 (Rng.create 999) i)
           (List.init n (fun i -> i)))

let prop_plan_arrivals_well_formed =
  QCheck.Test.make
    ~name:"plan: arrivals nondecreasing within horizon, sessions pinned"
    ~count:30
    QCheck.(pair (int_range 0 1_000) (int_range 0 3))
    (fun (seed, curve_i) ->
      let p = plan_of (seed, 500, curve_i, 2) in
      let l = Openloop.load p in
      let a = l.Runtime.arrivals in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if t < 0.0 || t > 4_000.0 then ok := false;
          if i > 0 && t < a.(i - 1) then ok := false)
        a;
      for i = 0 to Array.length a - 1 do
        let s = l.Runtime.session_of i in
        if s < 0 || s >= 6 then ok := false;
        (* one session, one home site, one Lamport clock *)
        if l.Runtime.home_of i <> s mod 3 then ok := false
      done;
      !ok)

let test_curve_multipliers () =
  let fc = Openloop.Flash_crowd { at = 1_000.0; duration = 500.0; mult = 6.0 } in
  let m t = Openloop.multiplier fc ~horizon:4_000.0 t in
  check_bool "before the burst" true (m 999.0 = 1.0);
  check_bool "inside the burst" true (m 1_250.0 = 6.0);
  check_bool "after the burst" true (m 1_500.0 = 1.0);
  let ramp = Openloop.Ramp 4.0 in
  check_bool "ramp starts at 1x" true
    (Openloop.multiplier ramp ~horizon:4_000.0 0.0 = 1.0);
  check_bool "ramp ends at 4x" true
    (Float.abs (Openloop.multiplier ramp ~horizon:4_000.0 4_000.0 -. 4.0) < 1e-9)

(* --- the shed-safety monitor over hand-built traces -------------------- *)

(* The monitor specs close over a {cfg; outcome} context; the trace-level
   ones only read the configuration (for the grace window), so one cheap
   real outcome serves every hand-built-trace test. *)
let tiny_ctx =
  lazy
    (let cfg =
       { Runtime.default_config with Runtime.n_txns = 2; horizon = 5_000.0 }
     in
     { Monitors.cfg; outcome = Runtime.run cfg })

let spec_of name =
  match Monitors.find name with
  | Some e -> e.Monitors.e_spec (Lazy.force tiny_ctx)
  | None -> Alcotest.fail (name ^ " missing from the monitor catalogue")

(* A trace bus with a hand-cranked clock, so quiesce can land far past
   any liveness grace window. *)
let clocked_trace () =
  let tr = Trace.create ~n_sites:3 () in
  let now = ref 0.0 in
  Trace.set_clock tr (fun () -> !now);
  (tr, now)

let quiesce ?(fair = true) tr =
  ignore
    (Trace.emit tr ~site:(-1)
       (Trace.Quiesce
          { up = (if fair then 3 else 2); n_sites = 3; partitioned = false }))

let test_shed_safety_accepts_clean_shed () =
  let tr, now = clocked_trace () in
  ignore (Trace.emit tr ~site:0 (Trace.Shed { txn = "T0"; reason = "deadline" }));
  ignore
    (Trace.emit tr ~site:1
       (Trace.Repo_append { txn = "T0"; op = "Enq"; tentative = true }));
  ignore
    (Trace.emit tr ~site:1 (Trace.Repo_resolve { txn = "T0"; committed = false }));
  ignore (Trace.emit tr ~site:0 (Trace.Txn_abort { txn = "T0"; reason = "shed" }));
  now := 1_000_000.0;
  quiesce tr;
  check_bool "resolved shed is clean" true (SM.run (spec_of "shed_safety") tr = [])

let test_shed_safety_flags_residual_entry () =
  let tr, now = clocked_trace () in
  ignore (Trace.emit tr ~site:0 (Trace.Shed { txn = "T0"; reason = "queue_full" }));
  ignore
    (Trace.emit tr ~site:2
       (Trace.Repo_append { txn = "T0"; op = "Enq"; tentative = true }));
  now := 1_000_000.0;
  quiesce tr;
  (match SM.run (spec_of "shed_safety") tr with
   | [ v ] ->
     check_bool "the surviving site is named" true
       (String.length v.SM.v_message > 0
       && String.index_opt v.SM.v_message '2' <> None)
   | vs ->
     Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

let test_shed_safety_unfair_run_owes_nothing () =
  (* Same residue, but the network never healed: the obligation leg is
     fairness-gated, so no verdict. *)
  let tr, now = clocked_trace () in
  ignore (Trace.emit tr ~site:0 (Trace.Shed { txn = "T0"; reason = "queue_full" }));
  ignore
    (Trace.emit tr ~site:2
       (Trace.Repo_append { txn = "T0"; op = "Enq"; tentative = true }));
  now := 1_000_000.0;
  quiesce ~fair:false tr;
  check_bool "no obligation on an unfair run" true
    (SM.run (spec_of "shed_safety") tr = [])

let test_shed_safety_flags_shed_commit () =
  let tr, _now = clocked_trace () in
  ignore (Trace.emit tr ~site:0 (Trace.Shed { txn = "T3"; reason = "deadline" }));
  ignore (Trace.emit tr ~site:0 (Trace.Txn_commit { txn = "T3" }));
  quiesce tr;
  (match SM.run (spec_of "shed_safety") tr with
   | [ v ] ->
     check_bool "commit of a shed txn is the violation" true
       (v.SM.v_event <> None)
   | vs ->
     Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

let test_shed_safety_amnesia_clears_site () =
  (* An amnesiac crash wipes the volatile log: the wiped site's entry is
     no longer evidence. *)
  let tr, now = clocked_trace () in
  ignore (Trace.emit tr ~site:0 (Trace.Shed { txn = "T0"; reason = "queue_full" }));
  ignore
    (Trace.emit tr ~site:2
       (Trace.Repo_append { txn = "T0"; op = "Enq"; tentative = true }));
  ignore (Trace.emit tr ~site:2 (Trace.Crash { site = 2; amnesia = true }));
  now := 1_000_000.0;
  quiesce tr;
  check_bool "amnesia discharges the obligation" true
    (SM.run (spec_of "shed_safety") tr = [])

(* --- the per-session monotonicity monitor ------------------------------ *)

let session_commit tr ~session ~txn ~counter =
  ignore
    (Trace.emit tr ~site:(session mod 3)
       (Trace.Session_commit { session; txn; counter; site = session mod 3 }))

let test_session_monotonic_accepts_increasing () =
  let tr, _ = clocked_trace () in
  session_commit tr ~session:0 ~txn:"T0" ~counter:3;
  session_commit tr ~session:1 ~txn:"T1" ~counter:1;
  session_commit tr ~session:0 ~txn:"T2" ~counter:7;
  session_commit tr ~session:1 ~txn:"T3" ~counter:2;
  quiesce tr;
  check_bool "interleaved sessions, each increasing" true
    (SM.run (spec_of "session_monotonic") tr = [])

let test_session_monotonic_flags_backwards () =
  let tr, _ = clocked_trace () in
  session_commit tr ~session:0 ~txn:"T0" ~counter:5;
  session_commit tr ~session:1 ~txn:"T1" ~counter:9;
  session_commit tr ~session:0 ~txn:"T2" ~counter:5 (* not strictly above *);
  quiesce tr;
  match SM.run (spec_of "session_monotonic") tr with
  | [ v ] ->
    check_bool "keyed instance names the session" true
      (v.SM.v_monitor = "session_monotonic(0)")
  | vs ->
    Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

(* --- the circuit breaker's state machine -------------------------------- *)

let mk_breaker () =
  Breaker.create ~window:4 ~threshold:0.5 ~cooldown:100.0 ~probes:2 ~n_sites:2
    ()

let feed b ~site ~now oks = List.iter (fun ok -> Breaker.record b ~site ~now ~ok) oks

let test_breaker_trips_on_failure_fraction () =
  let b = mk_breaker () in
  check_bool "starts closed" true (Breaker.state b ~site:0 = Breaker.Closed);
  feed b ~site:0 ~now:0.0 [ true; false; true ];
  check_bool "window not yet full" true (Breaker.state b ~site:0 = Breaker.Closed);
  feed b ~site:0 ~now:1.0 [ false ];
  check_bool "2/4 failures trips" true (Breaker.state b ~site:0 = Breaker.Open);
  check_bool "open refuses traffic" false (Breaker.allow b ~site:0 ~now:50.0);
  check_bool "other site unaffected" true (Breaker.state b ~site:1 = Breaker.Closed);
  check_bool "other site flows" true (Breaker.allow b ~site:1 ~now:50.0)

let test_breaker_half_open_probe_cycle () =
  let b = mk_breaker () in
  feed b ~site:0 ~now:0.0 [ false; false; false; false ];
  check_bool "tripped" true (Breaker.state b ~site:0 = Breaker.Open);
  (* Stragglers from calls issued before the trip are ignored. *)
  feed b ~site:0 ~now:10.0 [ false; false ];
  check_bool "cooldown admits the probe" true (Breaker.allow b ~site:0 ~now:101.0);
  check_bool "now half-open" true (Breaker.state b ~site:0 = Breaker.Half_open);
  (* A half-open failure re-opens for another cooldown. *)
  feed b ~site:0 ~now:102.0 [ false ];
  check_bool "probe failure re-opens" true (Breaker.state b ~site:0 = Breaker.Open);
  check_bool "and refuses again" false (Breaker.allow b ~site:0 ~now:150.0);
  ignore (Breaker.allow b ~site:0 ~now:203.0);
  feed b ~site:0 ~now:204.0 [ true ];
  check_bool "one success is not enough" true
    (Breaker.state b ~site:0 = Breaker.Half_open);
  feed b ~site:0 ~now:205.0 [ true ];
  check_bool "two consecutive successes close it" true
    (Breaker.state b ~site:0 = Breaker.Closed);
  check_bool "closed flows" true (Breaker.allow b ~site:0 ~now:206.0)

let test_breaker_transition_hook_counts_trips () =
  let b = mk_breaker () in
  let trips = ref 0 in
  Breaker.set_transition_hook b (fun ~site:_ ~state ->
      if state = Breaker.Open then incr trips);
  feed b ~site:0 ~now:0.0 [ false; false; false; false ];
  ignore (Breaker.allow b ~site:0 ~now:101.0);
  feed b ~site:0 ~now:102.0 [ false ];
  check_int "both open transitions observed" 2 !trips

(* --- the admission-controlled runtime, end to end ----------------------- *)

let test_overload_base_sheds_and_stays_safe () =
  (* The chaos base under its own flash crowd, with the admission window
     cinched tight enough that the burst alone overflows it (the stock
     base only sheds once a nemesis amplifies retries): shedding must
     happen, and the whole monitor catalogue must stay green over the
     traced run. *)
  let tr = Trace.create ~n_sites:3 () in
  let cfg =
    {
      Campaign.overload_base with
      Runtime.trace = Some tr;
      admission =
        Some
          {
            Runtime.max_in_flight = 2;
            queue_limit = 3;
            deadline = 800.0;
            adm_shed_policy = Runtime.Shed_reads_first;
            adm_breaker = Some Runtime.default_breaker;
          };
    }
  in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_bool "the crowd overwhelms the window" true (m.Runtime.shed > 0);
  check_bool "but work still commits" true (m.Runtime.committed > 0);
  check_bool "every shed is an abort" true (m.Runtime.shed <= m.Runtime.aborted);
  check_bool "timely is a subset of committed" true
    (m.Runtime.timely_commits <= m.Runtime.committed);
  check_bool "sojourns were recorded" true (Summary.count m.Runtime.sojourn > 0);
  check_bool "full catalogue green" true
    (Monitors.run Monitors.registry { Monitors.cfg; outcome } tr = [])

let test_overload_run_is_deterministic () =
  let run () =
    let outcome = Runtime.run Campaign.overload_base in
    let m = outcome.Runtime.metrics in
    ( m.Runtime.committed,
      m.Runtime.aborted,
      m.Runtime.shed,
      m.Runtime.timely_commits,
      m.Runtime.retries_spent )
  in
  check_bool "same seed, same overload outcome" true (run () = run ())

let hot_queue_cfg ~scheme ~retry_budget =
  (* One hot queue, everyone contending: the regime that amplifies
     retries (and the one that exposed the locking conflict table built
     from the wrong relation). *)
  let plan =
    Openloop.plan ~profile:Openloop.Queue_fanout ~n_objects:1 ~n_sites:3
      ~n_sessions:6 ~seed:11 ~rate:0.02 ~horizon:3_000.0 ()
  in
  Openloop.apply plan
    {
      Runtime.default_config with
      Runtime.scheme;
      seed = 7;
      horizon = 15_000.0;
      retry_budget;
    }

let test_retry_budget_exhausts_under_contention () =
  let starved =
    Runtime.run (hot_queue_cfg ~scheme:Replicated.Locking ~retry_budget:1)
  in
  let sm = starved.Runtime.metrics in
  check_bool "budget 1 exhausts under a hot queue" true
    (sm.Runtime.retries_budget_exhausted > 0);
  check_bool "exhaustions abort" true
    (sm.Runtime.retries_budget_exhausted <= sm.Runtime.aborted);
  let unbounded =
    Runtime.run (hot_queue_cfg ~scheme:Replicated.Locking ~retry_budget:max_int)
  in
  let um = unbounded.Runtime.metrics in
  check_int "an infinite budget never exhausts" 0
    um.Runtime.retries_budget_exhausted;
  check_bool "and spends more retries than the starved run" true
    (um.Runtime.retries_spent > sm.Runtime.retries_spent)

let test_locking_stays_atomic_on_hot_queue () =
  (* Regression: locking's conflict table must come from the dynamic
     dependency relation (Theorem 10) — on the dependency relation alone,
     concurrent Enqs slip through and commit-order serialization breaks
     exactly here. *)
  let cfg = hot_queue_cfg ~scheme:Replicated.Locking ~retry_budget:max_int in
  let outcome = Runtime.run cfg in
  check_bool "some commits happened" true
    (outcome.Runtime.metrics.Runtime.committed > 0);
  check_bool "local atomicity holds" true (Runtime.check_atomicity cfg outcome = []);
  check_bool "one system-wide order holds" true
    (Runtime.check_common_order cfg outcome = [])

let suites =
  [
    ( "overload.openloop",
      Alcotest.
        [
          test_case "zipf cdf shape" `Quick test_zipf_cdf_shape;
          test_case "curve multipliers" `Quick test_curve_multipliers;
        ]
      @ to_alcotest
          [
            prop_zipf_sample_in_range_and_deterministic;
            prop_plan_deterministic;
            prop_plan_arrivals_well_formed;
          ] );
    ( "overload.monitors",
      Alcotest.
        [
          test_case "shed_safety: clean shed" `Quick
            test_shed_safety_accepts_clean_shed;
          test_case "shed_safety: residual entry" `Quick
            test_shed_safety_flags_residual_entry;
          test_case "shed_safety: unfair run" `Quick
            test_shed_safety_unfair_run_owes_nothing;
          test_case "shed_safety: shed then committed" `Quick
            test_shed_safety_flags_shed_commit;
          test_case "shed_safety: amnesia clears" `Quick
            test_shed_safety_amnesia_clears_site;
          test_case "session_monotonic: increasing" `Quick
            test_session_monotonic_accepts_increasing;
          test_case "session_monotonic: backwards" `Quick
            test_session_monotonic_flags_backwards;
        ] );
    ( "overload.breaker",
      Alcotest.
        [
          test_case "trips on failure fraction" `Quick
            test_breaker_trips_on_failure_fraction;
          test_case "half-open probe cycle" `Quick
            test_breaker_half_open_probe_cycle;
          test_case "transition hook" `Quick
            test_breaker_transition_hook_counts_trips;
        ] );
    ( "overload.runtime",
      Alcotest.
        [
          test_case "overload base sheds, stays safe" `Quick
            test_overload_base_sheds_and_stays_safe;
          test_case "overload run is deterministic" `Quick
            test_overload_run_is_deterministic;
          test_case "retry budget exhausts" `Quick
            test_retry_budget_exhausts_under_contention;
          test_case "locking atomic on a hot queue" `Quick
            test_locking_stays_atomic_on_hot_queue;
        ] );
  ]
