(* Performance observability: phase profiler, sim-time time-series
   windowing, per-kind trace sampling (with the forced-fidelity guard for
   monitor-subscribed kinds), and the BENCH regression gate. *)

open Atomrep_replica
open Atomrep_chaos
module Trace = Atomrep_obs.Trace
module Profile = Atomrep_obs.Profile
module Timeseries = Atomrep_obs.Timeseries
module Bench_diff = Atomrep_obs.Bench_diff
module Json = Atomrep_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- profile --- *)

let test_profile_records_phases () =
  let p = Profile.create () in
  let clock = ref 0.0 in
  Profile.set_clock p (fun () -> !clock);
  let v =
    Profile.time p ~subsystem:"engine" "dispatch" (fun () ->
        clock := !clock +. 2.0;
        Profile.time p ~subsystem:"network" "send" (fun () ->
            clock := !clock +. 1.0;
            7))
  in
  check_int "thunk value returned" 7 v;
  ignore (Profile.time p ~subsystem:"engine" "dispatch" (fun () -> ()));
  let phases = Profile.phases p in
  check_int "two phases" 2 (List.length phases);
  (* Hottest first: dispatch accumulated 3.0 — its own 2.0 plus the
     nested send's 1.0, since phases are inclusive — and send 1.0. *)
  let hot = List.hd phases in
  check_string "hottest is dispatch" "dispatch" hot.Profile.p_phase;
  check_string "subsystem kept" "engine" hot.Profile.p_subsystem;
  check_int "dispatch counted twice" 2 hot.Profile.p_count;
  check_bool "inclusive wall" true (abs_float (hot.Profile.p_wall -. 3.0) < 1e-9);
  check_bool "total wall sums phases" true
    (abs_float (Profile.total_wall p -. 4.0) < 1e-9);
  check_int "top 1" 1 (List.length (Profile.top p ~n:1))

let test_profile_null_is_inert () =
  check_bool "null disabled" false (Profile.enabled Profile.null);
  let v = Profile.time Profile.null ~subsystem:"x" "y" (fun () -> 3) in
  check_int "thunk still runs" 3 v;
  check_int "nothing recorded" 0 (List.length (Profile.phases Profile.null))

let test_profile_exception_still_counts () =
  let p = Profile.create () in
  (try
     Profile.time p ~subsystem:"wal" "flush" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Profile.phases p with
  | [ c ] -> check_int "partial measurement recorded" 1 c.Profile.p_count
  | l -> Alcotest.failf "expected one phase, got %d" (List.length l)

let test_profile_ambient_install () =
  let p = Profile.create () in
  check_bool "default ambient disabled" false (Profile.enabled (Profile.current ()));
  let r =
    Profile.with_current p (fun () ->
        check_bool "installed" true (Profile.enabled (Profile.current ()));
        Profile.record ~subsystem:"trace" "publish" (fun () -> 11))
  in
  check_int "record returns" 11 r;
  check_bool "restored after" false (Profile.enabled (Profile.current ()));
  check_int "recorded against installed profile" 1
    (List.length (Profile.phases p));
  (* Restore also on exceptions. *)
  (try Profile.with_current p (fun () -> failwith "boom") with Failure _ -> ());
  check_bool "restored after raise" false (Profile.enabled (Profile.current ()))

let test_profile_json_shape () =
  let p = Profile.create () in
  ignore (Profile.time p ~subsystem:"a" "b" (fun () -> ()));
  match Profile.to_json p with
  | Json.Obj [ ("phases", Json.List [ Json.Obj fields ]) ] ->
    check_bool "has subsystem" true (List.mem_assoc "subsystem" fields);
    check_bool "has wall_s" true (List.mem_assoc "wall_s" fields)
  | _ -> Alcotest.fail "unexpected profile json shape"

(* --- timeseries windowing --- *)

let test_timeseries_empty_gap_windows () =
  let ts = Timeseries.create ~width:10.0 () in
  let s = Timeseries.series ts ~agg:Timeseries.Sum "c" in
  Timeseries.observe ts s ~now:1.0 5.0;
  (* Skip windows 1 and 2 entirely: they must materialize empty. *)
  Timeseries.observe ts s ~now:35.0 2.0;
  Timeseries.finish ts ~now:40.0;
  let ws = Timeseries.windows ts in
  check_int "four windows" 4 (List.length ws);
  (match ws with
   | [ w0; w1; w2; w3 ] ->
     check_bool "w0 sum" true (Timeseries.value w0 s = Some 5.0);
     check_bool "gap w1 empty" true (Timeseries.value w1 s = None);
     check_bool "gap w2 empty" true (Timeseries.value w2 s = None);
     check_bool "w3 sum" true (Timeseries.value w3 s = Some 2.0);
     check_int "indices consecutive" 3 w3.Timeseries.w_index;
     check_bool "all complete" true
       (List.for_all (fun w -> w.Timeseries.w_complete) ws)
   | _ -> Alcotest.fail "bad windows");
  (* CSV keeps the empty rows (no holes). *)
  let lines = String.split_on_char '\n' (String.trim (Timeseries.to_csv ts)) in
  check_int "header + 4 rows" 5 (List.length lines)

let test_timeseries_single_sample_run () =
  let ts = Timeseries.create ~width:10.0 () in
  let s = Timeseries.series ts "g" in
  Timeseries.observe ts s ~now:3.0 42.0;
  Timeseries.finish ts ~now:3.5;
  match Timeseries.windows ts with
  | [ w ] ->
    check_bool "value kept" true (Timeseries.value w s = Some 42.0);
    check_bool "partial final window" false w.Timeseries.w_complete;
    check_bool "nominal until" true (w.Timeseries.w_until = 10.0)
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws)

let test_timeseries_boundary_lands_later () =
  let ts = Timeseries.create ~width:10.0 () in
  let s = Timeseries.series ts ~agg:Timeseries.Sum "c" in
  Timeseries.observe ts s ~now:0.0 1.0;
  (* Exactly on the boundary: half-open windows put it in window 1. *)
  Timeseries.observe ts s ~now:10.0 1.0;
  Timeseries.finish ts ~now:20.0;
  match Timeseries.windows ts with
  | [ w0; w1 ] ->
    check_bool "first window keeps only its own" true
      (Timeseries.value w0 s = Some 1.0);
    check_bool "boundary event in later window" true
      (Timeseries.value w1 s = Some 1.0)
  | ws -> Alcotest.failf "expected two windows, got %d" (List.length ws)

let test_timeseries_run_ends_mid_window () =
  let ts = Timeseries.create ~width:10.0 () in
  let s = Timeseries.series ts ~agg:Timeseries.Max "q" in
  Timeseries.observe ts s ~now:2.0 3.0;
  Timeseries.observe ts s ~now:12.0 9.0;
  Timeseries.observe ts s ~now:13.0 4.0;
  Timeseries.finish ts ~now:15.0;
  (match Timeseries.windows ts with
   | [ w0; w1 ] ->
     check_bool "w0 complete" true w0.Timeseries.w_complete;
     check_bool "w1 incomplete" false w1.Timeseries.w_complete;
     check_bool "max aggregation" true (Timeseries.value w1 s = Some 9.0)
   | ws -> Alcotest.failf "expected two windows, got %d" (List.length ws));
  (* finish is idempotent and later observations are ignored. *)
  Timeseries.finish ts ~now:99.0;
  Timeseries.observe ts s ~now:50.0 100.0;
  check_int "still two windows" 2 (List.length (Timeseries.windows ts))

let test_timeseries_empty_run () =
  let ts = Timeseries.create ~width:10.0 () in
  let _s = Timeseries.series ts "g" in
  Timeseries.finish ts ~now:0.0;
  check_int "no windows for an empty run" 0 (List.length (Timeseries.windows ts));
  check_int "nothing dropped" 0 (Timeseries.dropped ts)

let test_timeseries_ring_overflow () =
  let ts = Timeseries.create ~capacity:3 ~width:1.0 () in
  let s = Timeseries.series ts ~agg:Timeseries.Sum "c" in
  for i = 0 to 9 do
    Timeseries.observe ts s ~now:(float_of_int i) 1.0
  done;
  Timeseries.finish ts ~now:10.0;
  check_int "ring keeps capacity" 3 (List.length (Timeseries.windows ts));
  check_int "dropped counted" 7 (Timeseries.dropped ts);
  match Timeseries.windows ts with
  | w :: _ -> check_int "oldest surviving window" 7 w.Timeseries.w_index
  | [] -> Alcotest.fail "no windows"

let test_timeseries_registration_freezes () =
  let ts = Timeseries.create ~width:1.0 () in
  let s = Timeseries.series ts "a" in
  Timeseries.observe ts s ~now:0.0 1.0;
  match Timeseries.series ts "b" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "registration after first observation must raise"

(* --- trace sampling --- *)

let rpc i = Trace.Rpc_send { src = i mod 3; dst = (i + 1) mod 3 }

let test_sampling_deterministic_thinning () =
  let tr = Trace.create ~n_sites:3 () in
  Trace.set_sampling tr ~every:4 ();
  let ids = List.init 20 (fun i -> Trace.emit tr ~site:0 (rpc i)) in
  let kept = List.filter (fun id -> id >= 0) ids in
  check_int "1 in 4 kept" 5 (List.length kept);
  check_int "dropped counted" 15 (Trace.sampled_out tr);
  (* The very first event of a kind is always kept (counter starts at 0),
     and sampled-out emits return -1. *)
  check_bool "first kept" true (List.hd ids >= 0);
  check_int "second dropped" (-1) (List.nth ids 1);
  (* Per-kind counters: a different kind starts its own counter. *)
  let c = Trace.emit tr ~site:0 (Trace.Txn_begin { txn = "T0" }) in
  check_bool "new kind's first event kept" true (c >= 0)

let test_sampling_keeps_spans_and_quiesce () =
  let tr = Trace.create ~n_sites:1 () in
  Trace.set_sampling tr ~every:1000 ();
  let spans = List.init 5 (fun _ -> Trace.span_begin tr ~site:0 "op") in
  List.iter (fun s -> Trace.span_end tr ~site:0 ~span:s ~outcome:"ok") spans;
  ignore
    (Trace.emit tr ~site:(-1)
       (Trace.Quiesce { up = 1; n_sites = 1; partitioned = false }));
  check_bool "all spans kept" true (List.for_all (fun s -> s >= 0) spans);
  check_int "5 begin + 5 end + quiesce" 11 (Trace.length tr);
  check_int "nothing sampled out" 0 (Trace.sampled_out tr)

let test_sampling_forced_kinds_full_fidelity () =
  let tr = Trace.create ~n_sites:3 () in
  let forced k = String.equal (Trace.kind_label k) "txn_commit" in
  Trace.set_sampling tr ~every:10 ~forced ();
  for i = 0 to 19 do
    ignore (Trace.emit tr ~site:0 (rpc i));
    ignore
      (Trace.emit tr ~site:0 (Trace.Txn_commit { txn = Printf.sprintf "T%d" i }))
  done;
  let events = Trace.events tr in
  let count label =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           String.equal (Trace.kind_label e.Trace.kind) label)
         events)
  in
  check_int "forced kind kept fully" 20 (count "txn_commit");
  check_int "unforced kind thinned" 2 (count "rpc_send");
  (* Restoring full fidelity resets the counters. *)
  Trace.set_sampling tr ~every:1 ();
  ignore (Trace.emit tr ~site:0 (rpc 0));
  check_int "full fidelity again" 23 (Trace.length tr)

(* The guard the whole design rests on: a monitored run under sampling
   reaches the same verdicts as the full-fidelity run at the same seed,
   because every kind some active monitor subscribes to is forced. *)
let monitored_verdicts ~sample ~seed =
  let monitors = Monitors.registry in
  let trace = Trace.create ~n_sites:3 () in
  if sample > 1 then
    Trace.set_sampling trace ~every:sample ~forced:(Monitors.forced monitors) ();
  let cfg =
    Campaign.configure ~base:Campaign.default_base ~scheme:Replicated.Static
      ~seed ~n_txns:20 ~intensity:1.0 ~trace
      (match Campaign.find_profile "storm" with
       | Some p -> p
       | None -> Alcotest.fail "storm profile missing")
  in
  let outcome = Runtime.run cfg in
  let violations = Monitors.run monitors { Monitors.cfg; outcome } trace in
  let counts =
    List.map
      (fun label ->
        ( label,
          List.length
            (List.filter
               (fun (e : Trace.event) ->
                 String.equal (Trace.kind_label e.Trace.kind) label)
               (Trace.events trace)) ))
      (Monitors.observed_labels monitors)
  in
  (Atomrep_obs.Spec_monitor.failures violations, counts, Trace.length trace)

let test_sampling_never_hides_monitor_events () =
  List.iter
    (fun seed ->
      let full_failures, full_counts, full_len =
        monitored_verdicts ~sample:1 ~seed
      in
      let sampled_failures, sampled_counts, sampled_len =
        monitored_verdicts ~sample:7 ~seed
      in
      check_bool "verdicts identical" true (full_failures = sampled_failures);
      check_bool "monitor-kind counts identical" true
        (full_counts = sampled_counts);
      check_bool "bus actually thinned" true (sampled_len < full_len))
    [ 0; 3; 11 ]

(* Drift guard for the catalogue's static subscription lists: every label
   in [e_observes] must be a kind the built spec's [on] predicate accepts,
   and no representative kind outside the list may be accepted — otherwise
   sampling could thin an event a monitor needed. *)
let test_observes_matches_spec_on () =
  let cfg = Runtime.default_config in
  let outcome = Runtime.run { cfg with Runtime.n_txns = 3 } in
  let ctx = { Monitors.cfg; outcome } in
  let representatives =
    [
      Trace.Txn_decide { txn = "T"; site = 0; committed = true };
      Trace.Quorum_read { txn = "T"; op = "Deq"; got = 1; need = 1 };
      Trace.Quorum_append { txn = "T"; op = "Enq"; got = 1; need = 1 };
      Trace.Txn_commit { txn = "T" };
      Trace.Txn_abort { txn = "T"; reason = "r" };
      Trace.Repo_append { txn = "T"; op = "Enq"; tentative = true };
      Trace.Crash { site = 0; amnesia = false };
      Trace.Quiesce { up = 3; n_sites = 3; partitioned = false };
      Trace.Lock_wait { txn = "T"; blocker = "U" };
      Trace.Lock_grant { txn = "T"; op = "Enq" };
      Trace.Deadlock { victim = "T"; cycle = [ "T"; "U" ] };
      Trace.Commit_point { txn = "T" };
      Trace.Txn_redrive { txn = "T"; outcome = "commit" };
      Trace.Coop_term { txn = "T"; outcome = "coop-commit" };
      Trace.Rpc_send { src = 0; dst = 1 };
      Trace.Txn_begin { txn = "T" };
      Trace.Shed { txn = "T"; reason = "queue_full" };
      Trace.Repo_resolve { txn = "T"; committed = false };
      Trace.Session_commit { session = 0; txn = "T"; counter = 1; site = 0 };
      Trace.Breaker { site = 0; state = "open" };
    ]
  in
  List.iter
    (fun (e : Monitors.entry) ->
      let spec = e.Monitors.e_spec ctx in
      List.iter
        (fun kind ->
          let label = Trace.kind_label kind in
          let listed = List.mem label e.Monitors.e_observes in
          let observed = Atomrep_obs.Spec_monitor.observes_kind spec kind in
          check_bool
            (Printf.sprintf "%s/%s: e_observes matches spec.on"
               e.Monitors.e_name label)
            listed observed)
        representatives)
    Monitors.registry;
  (* And the forced predicate is exactly the union of the lists. *)
  let forced = Monitors.forced Monitors.registry in
  check_bool "union forces txn_decide" true
    (forced (Trace.Txn_decide { txn = "T"; site = 0; committed = true }));
  check_bool "union spares rpc_send" false
    (forced (Trace.Rpc_send { src = 0; dst = 1 }))

(* --- runtime integration: profile + timeseries on a real run --- *)

let test_run_with_profile_and_timeseries () =
  let profile = Profile.create () in
  let timeseries = Timeseries.create ~width:500.0 () in
  let cfg =
    { Runtime.default_config with Runtime.n_txns = 30; profile; timeseries }
  in
  let with_obs = Runtime.run cfg in
  let bare =
    Runtime.run { cfg with Runtime.profile = Profile.null; timeseries = Timeseries.null }
  in
  (* Observability must not perturb the simulation. *)
  check_int "committed identical" bare.Runtime.metrics.Runtime.committed
    with_obs.Runtime.metrics.Runtime.committed;
  check_int "messages identical" bare.Runtime.metrics.Runtime.msgs_sent
    with_obs.Runtime.metrics.Runtime.msgs_sent;
  let phase_names =
    List.map
      (fun p -> p.Profile.p_subsystem ^ "/" ^ p.Profile.p_phase)
      (Profile.phases profile)
  in
  check_bool "engine dispatch profiled" true
    (List.mem "engine/dispatch" phase_names);
  check_bool "network send profiled" true (List.mem "network/send" phase_names);
  check_bool "quorum gather profiled" true
    (List.mem "quorum/gather" phase_names);
  let ws = Timeseries.windows timeseries in
  check_bool "windows sampled" true (List.length ws > 0);
  let committed =
    match
      List.filter_map
        (fun name -> if name = "committed" then Some name else None)
        (Timeseries.series_names timeseries)
    with
    | [] -> false
    | _ -> true
  in
  check_bool "committed series registered" true committed;
  (* The per-window committed deltas sum to the run's committed count. *)
  let s =
    (* series handles aren't exposed post-hoc; re-derive via to_json *)
    match Timeseries.to_json timeseries with
    | Json.Obj fields -> (
      match List.assoc_opt "windows" fields with
      | Some (Json.List ws) ->
        List.fold_left
          (fun acc w ->
            match w with
            | Json.Obj wf -> (
              match List.assoc_opt "values" wf with
              | Some (Json.Obj vals) -> (
                match List.assoc_opt "committed" vals with
                | Some (Json.Num n) -> acc + int_of_float n
                | _ -> acc)
              | _ -> acc)
            | _ -> acc)
          0 ws
      | _ -> -1)
    | _ -> -1
  in
  check_int "window deltas sum to committed"
    bare.Runtime.metrics.Runtime.committed s

(* --- bench-diff --- *)

let bench_json ~kind ~per_s =
  Json.Obj
    [
      ("bench", Json.Str kind);
      ( "schemes",
        Json.Obj
          [
            ( "hybrid",
              Json.Obj
                [
                  ("committed", Json.int 100);
                  ("wall_s", Json.Num 1.0);
                  ("committed_per_s", Json.Num per_s);
                ] );
          ] );
    ]

let test_bench_diff_harvest () =
  let entry =
    Bench_diff.of_json ~file:"BENCH_9.json" (bench_json ~kind:"perf" ~per_s:500.0)
  in
  check_int "index parsed" 9 entry.Bench_diff.b_index;
  check_string "kind from bench field" "perf" entry.Bench_diff.b_kind;
  (match entry.Bench_diff.b_rows with
   | [ r ] ->
     check_string "dotted label" "schemes.hybrid" r.Bench_diff.r_label;
     check_bool "per_s preferred" true (r.Bench_diff.r_per_s = Some 500.0)
   | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  check_bool "headline" true (Bench_diff.headline entry = Some 500.0);
  (* Kind falls back to the filename stem without a bench field. *)
  let bare =
    Bench_diff.of_json ~file:"BENCH_2.json"
      (Json.Obj [ ("x", Json.Obj [ ("committed", Json.int 5) ]) ])
  in
  check_string "stem fallback" "BENCH_2" bare.Bench_diff.b_kind

let test_bench_diff_gate_same_kind_only () =
  let entry ~file ~kind ~per_s = Bench_diff.of_json ~file (bench_json ~kind ~per_s) in
  (* A regression in "perf" is judged against the previous "perf" entry,
     skipping an interleaved entry of another kind. *)
  let entries =
    [
      entry ~file:"BENCH_3.json" ~kind:"perf" ~per_s:1000.0;
      entry ~file:"BENCH_4.json" ~kind:"other" ~per_s:9999.0;
      entry ~file:"BENCH_5.json" ~kind:"perf" ~per_s:700.0;
    ]
  in
  (match Bench_diff.gate entries ~threshold:0.2 with
   | Some v ->
     check_bool "regressed vs same-kind baseline" true v.Bench_diff.v_regressed;
     (match v.Bench_diff.v_baseline with
      | Some b -> check_string "baseline file" "BENCH_3.json" b.Bench_diff.b_file
      | None -> Alcotest.fail "expected a baseline");
     check_bool "ratio 0.7" true
       (match v.Bench_diff.v_ratio with
        | Some r -> abs_float (r -. 0.7) < 1e-9
        | None -> false)
   | None -> Alcotest.fail "expected a verdict");
  (* Within threshold: passes. *)
  let ok =
    [
      entry ~file:"BENCH_3.json" ~kind:"perf" ~per_s:1000.0;
      entry ~file:"BENCH_5.json" ~kind:"perf" ~per_s:900.0;
    ]
  in
  (match Bench_diff.gate ok ~threshold:0.2 with
   | Some v -> check_bool "10% dip passes" false v.Bench_diff.v_regressed
   | None -> Alcotest.fail "expected a verdict");
  (* First entry of a kind has no baseline and passes. *)
  let first =
    [
      entry ~file:"BENCH_3.json" ~kind:"other" ~per_s:1000.0;
      entry ~file:"BENCH_8.json" ~kind:"perf" ~per_s:1.0;
    ]
  in
  match Bench_diff.gate first ~threshold:0.2 with
  | Some v ->
    check_bool "no baseline" true (v.Bench_diff.v_baseline = None);
    check_bool "passes" false v.Bench_diff.v_regressed
  | None -> Alcotest.fail "expected a verdict"

let test_bench_diff_scan_and_injected_regression () =
  (* A scratch BENCH history on disk: scan must sort by index, skip
     unparsable files, and the gate must trip on an injected regression —
     the library half of what CI's `atomrep bench-diff` step exercises. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_diff_test_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name doc =
    Atomrep_obs.Export.write_file (Filename.concat dir name) (Json.to_string doc)
  in
  write "BENCH_8.json" (bench_json ~kind:"perf" ~per_s:1000.0);
  write "BENCH_3.json" (bench_json ~kind:"replicated-queue" ~per_s:500.0);
  Atomrep_obs.Export.write_file (Filename.concat dir "BENCH_junk.json") "not json";
  let entries = Bench_diff.scan ~dir in
  check_int "junk skipped, two entries" 2 (List.length entries);
  check_bool "sorted by index" true
    (List.map (fun e -> e.Bench_diff.b_index) entries = [ 3; 8 ]);
  (match Bench_diff.gate entries ~threshold:0.2 with
   | Some v ->
     check_bool "cross-kind newest passes (no baseline)" false
       v.Bench_diff.v_regressed
   | None -> Alcotest.fail "expected a verdict");
  (* Inject a regression: a newer perf entry at a fifth the throughput. *)
  write "BENCH_9.json" (bench_json ~kind:"perf" ~per_s:200.0);
  (match Bench_diff.gate (Bench_diff.scan ~dir) ~threshold:0.2 with
   | Some v ->
     check_bool "injected regression trips the gate" true
       v.Bench_diff.v_regressed
   | None -> Alcotest.fail "expected a verdict");
  List.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    [ "BENCH_3.json"; "BENCH_8.json"; "BENCH_9.json"; "BENCH_junk.json" ];
  Sys.rmdir dir

let suites =
  [
    ( "perfobs",
      [
        Alcotest.test_case "profile records phases" `Quick test_profile_records_phases;
        Alcotest.test_case "profile null is inert" `Quick test_profile_null_is_inert;
        Alcotest.test_case "profile counts on exception" `Quick
          test_profile_exception_still_counts;
        Alcotest.test_case "profile ambient install/restore" `Quick
          test_profile_ambient_install;
        Alcotest.test_case "profile json shape" `Quick test_profile_json_shape;
        Alcotest.test_case "timeseries: gap windows materialize empty" `Quick
          test_timeseries_empty_gap_windows;
        Alcotest.test_case "timeseries: single sample, partial window" `Quick
          test_timeseries_single_sample_run;
        Alcotest.test_case "timeseries: boundary event lands later" `Quick
          test_timeseries_boundary_lands_later;
        Alcotest.test_case "timeseries: run ends mid-window" `Quick
          test_timeseries_run_ends_mid_window;
        Alcotest.test_case "timeseries: empty run" `Quick test_timeseries_empty_run;
        Alcotest.test_case "timeseries: ring overflow" `Quick
          test_timeseries_ring_overflow;
        Alcotest.test_case "timeseries: registration freezes" `Quick
          test_timeseries_registration_freezes;
        Alcotest.test_case "sampling: deterministic thinning" `Quick
          test_sampling_deterministic_thinning;
        Alcotest.test_case "sampling: spans and quiesce kept" `Quick
          test_sampling_keeps_spans_and_quiesce;
        Alcotest.test_case "sampling: forced kinds full fidelity" `Quick
          test_sampling_forced_kinds_full_fidelity;
        Alcotest.test_case "sampling: monitors never lose events" `Quick
          test_sampling_never_hides_monitor_events;
        Alcotest.test_case "e_observes matches spec.on" `Quick
          test_observes_matches_spec_on;
        Alcotest.test_case "run with profile + timeseries" `Quick
          test_run_with_profile_and_timeseries;
        Alcotest.test_case "bench-diff: harvest" `Quick test_bench_diff_harvest;
        Alcotest.test_case "bench-diff: same-kind gate" `Quick
          test_bench_diff_gate_same_kind_only;
        Alcotest.test_case "bench-diff: scan + injected regression" `Quick
          test_bench_diff_scan_and_injected_regression;
      ] );
  ]
