(* Property-based tests (qcheck, registered through QCheck_alcotest). *)

open Atomrep_history
open Atomrep_spec
open Atomrep_atomicity
open Atomrep_core

let specs =
  [ Queue_type.spec; Prom.spec; Counter.spec; Register.spec; Wset.spec ]

let spec_gen = QCheck2.Gen.oneofl specs

(* Generators built on the workload module keep qcheck shrinking simple:
   generate a seed, derive the structure deterministically. *)
let seeded name gen_count prop =
  QCheck2.Test.make ~name ~count:gen_count QCheck2.Gen.(pair spec_gen nat) prop

let history_of spec seed ~max_actions ~max_events =
  let rng = Atomrep_stats.Rng.create seed in
  Atomrep_workload.Histories.random rng spec ~max_actions ~max_events

let serial_of spec seed ~len =
  let rng = Atomrep_stats.Rng.create seed in
  Atomrep_workload.Histories.random_serial rng spec ~len

let prop_generated_histories_well_formed =
  seeded "generated histories are well-formed" 300 (fun (spec, seed) ->
      Behavioral.well_formed (history_of spec seed ~max_actions:3 ~max_events:5))

let prop_random_serial_legal =
  seeded "random serial histories are legal" 300 (fun (spec, seed) ->
      Serial_spec.legal spec (serial_of spec seed ~len:6))

let prop_serial_prefix_closed =
  seeded "legality is prefix-closed" 200 (fun (spec, seed) ->
      let h = serial_of spec seed ~len:6 in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | e :: rest -> List.rev acc :: prefixes (e :: acc) rest
      in
      List.for_all (Serial_spec.legal spec) (prefixes [] h))

let prop_dynamic_implies_hybrid =
  seeded "strong dynamic implies hybrid" 200 (fun (spec, seed) ->
      let h = history_of spec seed ~max_actions:3 ~max_events:4 in
      (not (Atomicity.is_dynamic_atomic spec h)) || Atomicity.is_hybrid_atomic spec h)

let prop_atomic_control_accepted =
  seeded "serial executions satisfy all properties" 200 (fun (spec, seed) ->
      let rng = Atomrep_stats.Rng.create seed in
      let h = Atomrep_workload.Histories.random_atomic rng spec ~max_actions:3 ~max_events:5 in
      List.for_all (fun p -> Atomicity.satisfies spec p h) Atomicity.all_properties)

let prop_stripping_preserves_properties =
  seeded "aborted actions do not affect verdicts" 200 (fun (spec, seed) ->
      let h = history_of spec seed ~max_actions:3 ~max_events:4 in
      List.for_all
        (fun p ->
          Bool.equal (Atomicity.satisfies spec p h)
            (Atomicity.satisfies spec p (Behavioral.strip_aborted h)))
        Atomicity.all_properties)

let prop_state_equiv_reflexive_on_reachable =
  seeded "state equivalence is reflexive" 200 (fun (spec, seed) ->
      let h = serial_of spec seed ~len:5 in
      match Serial_spec.run spec h with
      | None -> false
      | Some s -> Serial_spec.state_equiv spec ~depth:4 s s)

let prop_commute_symmetric =
  QCheck2.Test.make ~name:"commutativity is symmetric" ~count:100
    QCheck2.Gen.(pair (oneofl specs) (pair nat nat))
    (fun (spec, (i, j)) ->
      let universe = Serial_spec.event_universe spec ~max_len:3 in
      let n = List.length universe in
      let e = List.nth universe (i mod n) and e' = List.nth universe (j mod n) in
      Bool.equal
        (Dynamic_dep.commute spec ~max_len:3 e e')
        (Dynamic_dep.commute spec ~max_len:3 e' e))

let prop_static_minimal_monotone =
  QCheck2.Test.make ~name:"static relation monotone in bound" ~count:10
    (QCheck2.Gen.oneofl specs)
    (fun spec ->
      Relation.subset
        (Static_dep.minimal spec ~max_len:2)
        (Static_dep.minimal spec ~max_len:4))

let prop_log_merge_associative =
  QCheck2.Test.make ~name:"log merge associative/commutative/idempotent" ~count:100
    QCheck2.Gen.(triple nat nat nat)
    (fun (s1, s2, s3) ->
      let open Atomrep_replica in
      let open Atomrep_clock in
      let mk seed =
        let rng = Atomrep_stats.Rng.create seed in
        let n = Atomrep_stats.Rng.int rng 5 in
        let log = ref Log.empty in
        for i = 0 to n - 1 do
          let action = Action.of_int (Atomrep_stats.Rng.int rng 3) in
          let ts_val = 1 + Atomrep_stats.Rng.int rng 10 in
          let ts = { Lamport.Timestamp.counter = ts_val; site = 0 } in
          log :=
            Log.add !log
              (Log.Entry
                 {
                   Log.ets = ts;
                   action;
                   begin_ts = ts;
                   seq = i;
                   event = Queue_type.enq "x";
                 })
        done;
        !log
      in
      let l1 = mk s1 and l2 = mk s2 and l3 = mk s3 in
      Log.equal (Log.merge l1 (Log.merge l2 l3)) (Log.merge (Log.merge l1 l2) l3)
      && Log.equal (Log.merge l1 l2) (Log.merge l2 l1)
      && Log.equal (Log.merge l1 l1) l1)

let prop_quorum_intersection_theorem =
  QCheck2.Test.make ~name:"threshold quorums intersect iff k1+k2>n" ~count:200
    QCheck2.Gen.(triple (int_range 1 6) (int_range 0 6) (int_range 0 6))
    (fun (n, k1, k2) ->
      let k1 = min k1 n and k2 = min k2 n in
      let q1s = Atomrep_quorum.Quorum.all_of_size ~n k1 in
      let q2s = Atomrep_quorum.Quorum.all_of_size ~n k2 in
      let all_intersect =
        List.for_all
          (fun q1 -> List.for_all (Atomrep_quorum.Quorum.intersects q1) q2s)
          q1s
      in
      Bool.equal all_intersect (k1 + k2 > n && k1 > 0 && k2 > 0))

let prop_availability_bounds =
  QCheck2.Test.make ~name:"availability lies in [0,1]" ~count:200
    QCheck2.Gen.(triple (int_range 1 7) (int_range 0 7) (float_bound_inclusive 1.0))
    (fun (n, k, p) ->
      let k = min k n in
      let a =
        Atomrep_quorum.Assignment.make ~n_sites:n
          [ ("Op", { Atomrep_quorum.Assignment.initial = k; final = k }) ]
      in
      let v = Atomrep_quorum.Assignment.availability a ~p "Op" in
      v >= -.1e-9 && v <= 1.0 +. 1e-9)

(* Random operation-level constraint sets over a small op alphabet. *)
let constraints_gen =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (map2
         (fun d s ->
           {
             Atomrep_quorum.Op_constraint.dependent = (if d then "A" else "B");
             supplier = (if s then "A" else "B");
             labels = [ "Ok" ];
           })
         bool bool))

let prop_enumerate_satisfies =
  QCheck2.Test.make ~name:"every enumerated assignment satisfies its constraints"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 4) constraints_gen)
    (fun (n_sites, constraints) ->
      let open Atomrep_quorum in
      Assignment.enumerate ~n_sites ~ops:[ "A"; "B" ] constraints
      |> List.for_all (fun a -> Assignment.satisfies a constraints))

let prop_availability_monotone_in_p =
  QCheck2.Test.make ~name:"availability monotone in site up-probability" ~count:120
    QCheck2.Gen.(
      quad (int_range 1 6) (int_range 1 6)
        (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    (fun (n, k, p1, p2) ->
      let open Atomrep_quorum in
      let k = min k n in
      let a =
        Assignment.make ~n_sites:n
          [ ("Op", { Assignment.initial = k; final = k }) ]
      in
      let lo = min p1 p2 and hi = max p1 p2 in
      Assignment.availability a ~p:lo "Op"
      <= Assignment.availability a ~p:hi "Op" +. 1e-9)

let prop_reassign_plan_sound =
  (* Whatever the policy proposes must be usable as an epoch: members are
     exactly the (deduplicated, sorted) live view, and the assignment both
     fits the member count and satisfies the constraints. *)
  QCheck2.Test.make ~name:"reassignment plans are sound" ~count:60
    QCheck2.Gen.(pair (list_size (int_range 0 6) (int_range 0 5)) constraints_gen)
    (fun (live, constraints) ->
      let open Atomrep_quorum in
      match Reassign.plan ~live ~ops:[ "A"; "B" ] ~constraints () with
      | None -> true
      | Some (members, a) ->
        members = List.sort_uniq compare live
        && Assignment.satisfies a constraints
        && (try
              ignore
                (Atomrep_replica.Epoch.make ~number:1 ~members ~assignment:a);
              true
            with Invalid_argument _ -> false))

let prop_relation_union_still_dependency =
  (* Monotonicity of hybrid validity under union, checked on PROM with a
     small checker. *)
  let checker =
    lazy (Hybrid_dep.make_checker Prom.spec ~max_events:3 ~max_actions:2)
  in
  QCheck2.Test.make ~name:"hybrid validity monotone under union" ~count:30
    QCheck2.Gen.(pair nat nat)
    (fun (i, j) ->
      let checker = Lazy.force checker in
      let base = Paper.prom_hybrid_relation in
      let universe = Serial_spec.event_universe Prom.spec ~max_len:3 in
      let invs = Prom.spec.Serial_spec.invocations in
      let extra =
        ( List.nth invs (i mod List.length invs),
          List.nth universe (j mod List.length universe) )
      in
      let bigger = Relation.add extra base in
      (not (Hybrid_dep.is_hybrid_dependency checker base))
      || Hybrid_dep.is_hybrid_dependency checker bigger)

(* Drive a local scheduler with random interleavings; whatever it lets
   through must satisfy its scheme's property. *)
let drive_scheduler (type a) (module S : Atomrep_cc.Scheduler.S with type t = a) spec seed =
  let open Atomrep_cc in
  let open Atomrep_clock in
  let rng = Atomrep_stats.Rng.create seed in
  let t = S.create spec in
  let n_actions = 2 + Atomrep_stats.Rng.int rng 2 in
  let clock = ref 0 in
  let tick () =
    incr clock;
    { Lamport.Timestamp.counter = !clock; site = 0 }
  in
  let status = Array.make n_actions `Fresh in
  let actions = Array.init n_actions Action.of_int in
  for _ = 1 to 12 do
    let i = Atomrep_stats.Rng.int rng n_actions in
    match status.(i) with
    | `Fresh ->
      S.begin_action t actions.(i) ~ts:(tick ());
      status.(i) <- `Active
    | `Active ->
      (match Atomrep_stats.Rng.int rng 4 with
       | 0 ->
         S.commit t actions.(i) ~ts:(tick ());
         status.(i) <- `Done
       | 1 ->
         S.abort t actions.(i);
         status.(i) <- `Done
       | _ ->
         let inv = Atomrep_stats.Rng.pick_list rng spec.Serial_spec.invocations in
         (match S.try_operation t actions.(i) inv with
          | Scheduler.Executed _ | Scheduler.Blocked _ -> ()
          | Scheduler.Rejected _ ->
            S.abort t actions.(i);
            status.(i) <- `Done))
    | `Done -> ()
  done;
  S.history t

let scheduler_specs = [ Queue_type.spec; Prom.spec; Counter.spec; Register.spec ]

let prop_locking_scheduler_dynamic =
  QCheck2.Test.make ~name:"locking scheduler yields dynamic atomic histories" ~count:120
    QCheck2.Gen.(pair (oneofl scheduler_specs) nat)
    (fun (spec, seed) ->
      let h = drive_scheduler (module Atomrep_cc.Scheduler.Locking) spec seed in
      Atomicity.is_dynamic_atomic spec h)

let prop_static_scheduler_static =
  QCheck2.Test.make ~name:"static scheduler yields static atomic histories" ~count:120
    QCheck2.Gen.(pair (oneofl scheduler_specs) nat)
    (fun (spec, seed) ->
      let h = drive_scheduler (module Atomrep_cc.Scheduler.Static_ts) spec seed in
      Atomicity.is_static_atomic spec h)

let prop_hybrid_scheduler_hybrid =
  QCheck2.Test.make ~name:"hybrid scheduler yields hybrid atomic histories" ~count:120
    QCheck2.Gen.(pair (oneofl scheduler_specs) nat)
    (fun (spec, seed) ->
      let h = drive_scheduler (module Atomrep_cc.Scheduler.Hybrid_ts) spec seed in
      Atomicity.is_hybrid_atomic spec h)

let prop_runtime_random_seeds_atomic =
  QCheck2.Test.make ~name:"replicated runtime atomic across random seeds" ~count:8
    QCheck2.Gen.nat
    (fun seed ->
      let open Atomrep_replica in
      let cfg = { Runtime.default_config with seed; n_txns = 25 } in
      let outcome = Runtime.run cfg in
      Runtime.check_atomicity cfg outcome = []
      && Runtime.check_common_order cfg outcome = [])

let prop_rng_int_uniform_support =
  QCheck2.Test.make ~name:"rng int covers support" ~count:20 QCheck2.Gen.nat
    (fun seed ->
      let rng = Atomrep_stats.Rng.create seed in
      let seen = Array.make 5 false in
      for _ = 1 to 300 do
        seen.(Atomrep_stats.Rng.int rng 5) <- true
      done;
      Array.for_all Fun.id seen)

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "properties",
      to_alcotest
        [
          prop_generated_histories_well_formed;
          prop_random_serial_legal;
          prop_serial_prefix_closed;
          prop_dynamic_implies_hybrid;
          prop_atomic_control_accepted;
          prop_stripping_preserves_properties;
          prop_state_equiv_reflexive_on_reachable;
          prop_commute_symmetric;
          prop_static_minimal_monotone;
          prop_log_merge_associative;
          prop_quorum_intersection_theorem;
          prop_availability_bounds;
          prop_enumerate_satisfies;
          prop_availability_monotone_in_p;
          prop_reassign_plan_sound;
          prop_relation_union_still_dependency;
          prop_locking_scheduler_dynamic;
          prop_static_scheduler_static;
          prop_hybrid_scheduler_hybrid;
          prop_runtime_random_seeds_atomic;
          prop_rng_int_uniform_support;
        ] );
  ]
