(* Online quorum reconfiguration: the heartbeat failure detector, the
   epoch layer and its cross-epoch intersection invariant, the
   availability-maximizing reassignment policy, and the runtime
   coordinator — including the negative paths: static atomicity refuses
   reassignment (Theorem 6 territory), a non-intersecting handoff with the
   barrier disabled fails closed, and an unsafe handoff that skips both is
   caught by the atomicity oracles and shrunk to a reproducer. *)

open Atomrep_spec
open Atomrep_core
open Atomrep_stats
open Atomrep_quorum
open Atomrep_sim
open Atomrep_replica
open Atomrep_chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- failure detector --- *)

(* Keep probe RPCs far from their timeout so a healthy site never misses. *)
let detector_net engine ~n_sites =
  Network.create engine ~n_sites ~latency_mean:2.0 ()

let test_detector_no_false_suspicion () =
  let engine = Engine.create ~seed:7 in
  let net = detector_net engine ~n_sites:5 in
  let det = Detector.start net ~rng:(Rng.split (Engine.rng engine)) () in
  Engine.run ~until:5_000.0 engine;
  Detector.stop det;
  check_int "no churn without faults" 0 (Detector.transitions det);
  Alcotest.(check (list int)) "everyone live" [ 0; 1; 2; 3; 4 ] (Detector.live det)

let test_detector_bounded_detection () =
  let engine = Engine.create ~seed:3 in
  let net = detector_net engine ~n_sites:4 in
  let det = Detector.start net ~rng:(Rng.split (Engine.rng engine)) () in
  Fault.kill net ~site:3 ~at:200.0;
  let before = ref true and after = ref false in
  Engine.schedule_at engine ~time:190.0 (fun () -> before := Detector.suspected det 3);
  (* Worst case: one in-flight probe still succeeds, then [suspect_after]
     probes each cost at most a 1.25-jittered period plus the timeout:
     (3 + 1) * (50 + 25) = 300 after the kill. *)
  Engine.schedule_at engine ~time:600.0 (fun () -> after := Detector.suspected det 3);
  Engine.run ~until:700.0 engine;
  Detector.stop det;
  check_bool "not suspected before the kill" false !before;
  check_bool "suspected within the detection bound" true !after;
  check_bool "dropped from the live view" true (not (List.mem 3 (Detector.live det)))

let test_detector_clears_after_recovery () =
  let engine = Engine.create ~seed:5 in
  let net = detector_net engine ~n_sites:3 in
  let det = Detector.start net ~rng:(Rng.split (Engine.rng engine)) () in
  Engine.schedule_at engine ~time:200.0 (fun () -> Network.crash net 1);
  Engine.schedule_at engine ~time:800.0 (fun () -> Network.recover net 1);
  let down = ref false and back = ref true in
  Engine.schedule_at engine ~time:700.0 (fun () -> down := Detector.suspected det 1);
  Engine.schedule_at engine ~time:1_000.0 (fun () -> back := Detector.suspected det 1);
  Engine.run ~until:1_100.0 engine;
  Detector.stop det;
  check_bool "suspected while down" true !down;
  check_bool "cleared by the first reply after recovery" false !back;
  (* One raise plus one clear. *)
  check_int "transition count" 2 (Detector.transitions det)

let test_detector_deterministic_replay () =
  let timeline seed =
    let engine = Engine.create ~seed in
    let net = detector_net engine ~n_sites:4 in
    let det = Detector.start net ~rng:(Rng.split (Engine.rng engine)) () in
    Fault.kill net ~site:2 ~at:300.0;
    Engine.schedule_at engine ~time:900.0 (fun () -> Network.recover net 2);
    let samples = ref [] in
    List.iter
      (fun time ->
        Engine.schedule_at engine ~time (fun () ->
            samples := Detector.suspected det 2 :: !samples))
      [ 250.0; 500.0; 700.0; 1_000.0; 1_200.0 ];
    Engine.run ~until:1_300.0 engine;
    Detector.stop det;
    (List.rev !samples, Detector.transitions det)
  in
  check_bool "same seed, same suspicion timeline" true (timeline 11 = timeline 11);
  let samples, _ = timeline 11 in
  check_bool "timeline saw the suspicion" true (List.mem true samples)

let test_detector_dead_monitor_does_not_poison () =
  let engine = Engine.create ~seed:9 in
  let net = detector_net engine ~n_sites:3 in
  let det = Detector.start net ~rng:(Rng.split (Engine.rng engine)) () in
  (* With the monitor itself down, timed-out probes must not be counted. *)
  Engine.schedule_at engine ~time:100.0 (fun () -> Network.crash net 0);
  Engine.run ~until:2_000.0 engine;
  Detector.stop det;
  check_int "no suspicion raised by a dead monitor" 0 (Detector.transitions det)

(* --- epochs --- *)

let even_assignment ~n_sites i f =
  Assignment.make ~n_sites
    [
      ("Enq", { Assignment.initial = i; final = f });
      ("Deq", { Assignment.initial = i; final = f });
    ]

let queue_constraints =
  Op_constraint.of_relation (Static_dep.minimal Queue_type.spec ~max_len:4)

let test_epoch_make_validates () =
  let a = even_assignment ~n_sites:3 2 2 in
  let e = Epoch.make ~number:1 ~members:[ 2; 1; 0; 1 ] ~assignment:a in
  Alcotest.(check (list int)) "members deduplicated and sorted" [ 0; 1; 2 ]
    (Epoch.members e);
  check_int "number" 1 (Epoch.number e);
  check_bool "size mismatch rejected" true
    (try
       ignore (Epoch.make ~number:1 ~members:[ 0; 1 ] ~assignment:a);
       false
     with Invalid_argument _ -> true)

let test_epoch_intersects () =
  let constraints =
    [ { Op_constraint.dependent = "Deq"; supplier = "Enq"; labels = [ "Ok" ] } ]
  in
  let prev =
    Epoch.make ~number:0 ~members:[ 0; 1; 2 ] ~assignment:(even_assignment ~n_sites:3 2 2)
  in
  let same_members =
    Epoch.make ~number:1 ~members:[ 0; 1; 2 ] ~assignment:(even_assignment ~n_sites:3 2 2)
  in
  (* u = 3, and 2 + 2 > 3 in both directions. *)
  check_bool "overlapping members intersect" true
    (Epoch.intersects ~constraints ~prev ~next:same_members);
  let disjoint =
    Epoch.make ~number:1 ~members:[ 3; 4; 5 ] ~assignment:(even_assignment ~n_sites:3 2 2)
  in
  (* u = 6 and 2 + 2 < 6: the handoff needs the state-transfer barrier. *)
  check_bool "disjoint members do not intersect" false
    (Epoch.intersects ~constraints ~prev ~next:disjoint);
  let one_foot =
    Epoch.make ~number:1 ~members:[ 1; 2; 3; 4 ]
      ~assignment:(even_assignment ~n_sites:4 4 4)
  in
  (* u = 5 and 4 + 2 > 5 both ways: big quorums bridge a partial overlap. *)
  check_bool "wide quorums bridge overlap" true
    (Epoch.intersects ~constraints ~prev ~next:one_foot)

let test_repository_epoch_monotone_and_stable () =
  let r = Repository.create ~site:0 () in
  check_int "starts at epoch 0" 0 (Repository.epoch r);
  Repository.advance_epoch r 2;
  check_int "advances to newer" 2 (Repository.epoch r);
  Repository.advance_epoch r 1;
  check_int "ignores older" 2 (Repository.epoch r);
  Repository.amnesia r;
  (* Epoch membership is stable state: an amnesiac site must not rejoin a
     configuration it had already left. *)
  check_int "survives crash-with-amnesia" 2 (Repository.epoch r)

(* --- reassignment policy --- *)

let test_reassign_plan () =
  (match
     Reassign.plan ~live:[ 4; 1; 3 ] ~ops:[ "Enq"; "Deq" ]
       ~constraints:queue_constraints ()
   with
  | None -> Alcotest.fail "expected a plan over three live sites"
  | Some (members, a) ->
    Alcotest.(check (list int)) "members are the live sites" [ 1; 3; 4 ] members;
    check_bool "assignment satisfies the constraints" true
      (Assignment.satisfies a queue_constraints));
  check_bool "no plan from an empty live view" true
    (Reassign.plan ~live:[] ~ops:[ "Enq"; "Deq" ] ~constraints:queue_constraints ()
     = None)

(* --- runtime coordinator: positive and negative paths --- *)

let kills_profile =
  match Campaign.find_profile "kills" with
  | Some p -> p
  | None -> Alcotest.fail "kills profile missing"

let run_reconfig_cell ~scheme ~seed =
  let cfg =
    Campaign.configure ~base:Campaign.reconfig_base ~scheme ~seed ~n_txns:25
      ~intensity:1.0 kills_profile
  in
  let outcome = Runtime.run cfg in
  let failures =
    Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome
  in
  (outcome.Runtime.metrics, failures)

let test_static_refuses_reconfiguration () =
  let m, failures = run_reconfig_cell ~scheme:Replicated.Static ~seed:3 in
  check_int "no handoffs under static atomicity" 0 m.Runtime.reconfigs;
  check_bool "refusals recorded" true (m.Runtime.reconfigs_refused > 0);
  check_int "epoch never advances" 0 m.Runtime.final_epoch;
  check_bool "still atomic" true (failures = [])

let test_hybrid_reconfigures_and_stays_atomic () =
  let m, failures = run_reconfig_cell ~scheme:Replicated.Hybrid ~seed:3 in
  check_bool "handoffs happened" true (m.Runtime.reconfigs > 0);
  check_bool "epoch advanced" true (m.Runtime.final_epoch >= 1);
  check_bool "detector saw the kills" true (m.Runtime.suspicion_transitions > 0);
  check_bool "still atomic" true (failures = [])

let test_barrier_disabled_fails_closed () =
  (* Force a plan whose quorums cannot intersect epoch 0's across the
     member union; with the barrier disallowed the coordinator must fail
     the handoff and leave the old epoch in force. *)
  let narrow ~live ~n_sites:_ =
    if List.length live = 4 then
      Some (live, even_assignment ~n_sites:4 2 3)
    else None
  in
  let base =
    {
      Campaign.reconfig_base with
      Runtime.reconfig =
        Some
          {
            Runtime.default_reconfig with
            Runtime.allow_barrier = false;
            plan_override = Some narrow;
          };
    }
  in
  let cfg =
    Campaign.configure ~base ~scheme:Replicated.Hybrid ~seed:3 ~n_txns:25
      ~intensity:1.0 kills_profile
  in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_int "no handoff without the barrier" 0 m.Runtime.reconfigs;
  check_bool "failures recorded" true (m.Runtime.reconfigs_failed > 0);
  check_int "old epoch stays in force" 0 m.Runtime.final_epoch;
  check_bool "failing closed is still atomic" true
    (Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome = [])

(* A six-site cluster whose queue lives on members {0,1,2}; when site 2
   dies the override proposes the disjoint member set {3,4,5}, so the only
   sound handoff is the state-transfer barrier. *)
let disjoint_base ~unsafe =
  let three = Runtime.default_queue_assignment ~n_sites:3 in
  {
    Campaign.reconfig_base with
    Runtime.n_sites = 6;
    (* Fast arrivals commit plenty of queue state in epoch 0 before the
       kill triggers the handoff — the state an unsafe switch strands. *)
    arrival_mean = 50.0;
    objects =
      [
        {
          Runtime.obj_name = "queue";
          obj_spec = Queue_type.spec;
          obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
          obj_assignment = three;
          obj_members = Some [ 0; 1; 2 ];
        };
      ];
    reconfig =
      Some
        {
          Runtime.default_reconfig with
          Runtime.unsafe_no_barrier = unsafe;
          plan_override =
            Some
              (fun ~live ~n_sites:_ ->
                if List.for_all (fun s -> List.mem s live) [ 3; 4; 5 ] then
                  Some ([ 3; 4; 5 ], three)
                else None);
        };
  }

let kill_member_profile =
  {
    Campaign.profile_name = "kill-member";
    nemesis = Nemesis.Staggered_kill { start = 600.0; gap = 1.0; victims = [ 2 ] };
  }

let test_unsafe_handoff_caught_and_shrunk () =
  let base = disjoint_base ~unsafe:true in
  let report =
    Campaign.run_campaign ~base ~schemes:[ Replicated.Hybrid ]
      ~profiles:[ kill_member_profile ] ~seeds:6 ()
  in
  check_bool "oracles catch the stranded epoch-0 state" true
    (report.Campaign.violations <> []);
  List.iter
    (fun v ->
      check_bool "shrunk reproducer still fails" true (v.Campaign.v_failures <> []);
      check_bool "shrunk within the original size" true (v.Campaign.v_n_txns <= 30))
    report.Campaign.violations

let test_barrier_handles_disjoint_handoff () =
  let base = disjoint_base ~unsafe:false in
  (* Same seeds, same kill, same disjoint plan — with the barrier the
     campaign must stay violation-free... *)
  let report =
    Campaign.run_campaign ~base ~schemes:[ Replicated.Hybrid ]
      ~profiles:[ kill_member_profile ] ~seeds:6 ()
  in
  check_bool "barrier keeps the campaign clean" true
    (report.Campaign.violations = []);
  (* ...and non-vacuously: the handoff to {3,4,5} really happens. *)
  let cfg =
    Campaign.configure ~base ~scheme:Replicated.Hybrid ~seed:0 ~n_txns:30
      ~intensity:1.0 kill_member_profile
  in
  let outcome = Runtime.run cfg in
  check_bool "handoff to the disjoint members happened" true
    (outcome.Runtime.metrics.Runtime.reconfigs >= 1)

let test_reconfiguration_improves_committed () =
  (* The bench's acceptance comparison in miniature: under progressive
     permanent site loss that breaks the original majority, switching the
     coordinator on must strictly increase committed transactions. *)
  let kills =
    Nemesis.Staggered_kill { start = 3_000.0; gap = 4_000.0; victims = [ 4; 3; 2 ] }
  in
  let cfg reconfig seed =
    {
      Campaign.reconfig_base with
      Runtime.scheme = Replicated.Hybrid;
      seed;
      n_txns = 120;
      arrival_mean = 100.0;
      horizon = 25_000.0;
      install_faults = (fun net -> Nemesis.install kills net);
      reconfig = (if reconfig then Some Runtime.default_reconfig else None);
    }
  in
  (* Aggregated over several seeds: any single (seed, probe phase)
     alignment can go either way under permanent majority loss, but the
     policy must win on average. *)
  let committed reconfig =
    List.fold_left
      (fun acc seed ->
        acc + (Runtime.run (cfg reconfig seed)).Runtime.metrics.Runtime.committed)
      0 [ 0; 1; 2; 3 ]
  in
  let off = committed false and on = committed true in
  check_bool
    (Printf.sprintf "reconfiguration on (%d) beats off (%d)" on off)
    true (on > off)

let test_campaign_reconfig_smoke () =
  let report =
    Campaign.run_campaign ~base:Campaign.reconfig_base
      ~schemes:Replicated.[ Hybrid; Locking ] ~profiles:[ kills_profile ] ~seeds:3 ()
  in
  check_bool "no violations with reconfiguration enabled" true
    (report.Campaign.violations = []);
  check_int "all cells ran" 6 report.Campaign.total_runs

let suites =
  [
    ( "reconfig",
      [
        Alcotest.test_case "detector: no false suspicion" `Quick
          test_detector_no_false_suspicion;
        Alcotest.test_case "detector: bounded detection" `Quick
          test_detector_bounded_detection;
        Alcotest.test_case "detector: clears after recovery" `Quick
          test_detector_clears_after_recovery;
        Alcotest.test_case "detector: deterministic replay" `Quick
          test_detector_deterministic_replay;
        Alcotest.test_case "detector: dead monitor is silent" `Quick
          test_detector_dead_monitor_does_not_poison;
        Alcotest.test_case "epoch: make validates" `Quick test_epoch_make_validates;
        Alcotest.test_case "epoch: intersection invariant" `Quick test_epoch_intersects;
        Alcotest.test_case "repository: epoch monotone and stable" `Quick
          test_repository_epoch_monotone_and_stable;
        Alcotest.test_case "reassign: plan over live sites" `Quick test_reassign_plan;
        Alcotest.test_case "static scheme refuses reassignment" `Quick
          test_static_refuses_reconfiguration;
        Alcotest.test_case "hybrid reconfigures and stays atomic" `Quick
          test_hybrid_reconfigures_and_stays_atomic;
        Alcotest.test_case "barrier disabled fails closed" `Quick
          test_barrier_disabled_fails_closed;
        Alcotest.test_case "unsafe handoff caught and shrunk" `Quick
          test_unsafe_handoff_caught_and_shrunk;
        Alcotest.test_case "barrier handles disjoint handoff" `Quick
          test_barrier_handles_disjoint_handoff;
        Alcotest.test_case "reconfiguration improves committed ops" `Quick
          test_reconfiguration_improves_committed;
        Alcotest.test_case "campaign smoke" `Quick test_campaign_reconfig_smoke;
      ] );
  ]
