open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_clock
open Atomrep_replica

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Log --- *)

let ts n = { Lamport.Timestamp.counter = n; site = 0 }

let entry n action seq event =
  Log.Entry
    { Log.ets = ts n; action = Action.of_string action; begin_ts = ts n; seq; event }

let test_log_merge_idempotent () =
  let l = Log.add Log.empty (entry 1 "A" 0 (Queue_type.enq "x")) in
  check_bool "merge with self" true (Log.equal (Log.merge l l) l);
  check_int "size" 1 (Log.size (Log.merge l l))

let test_log_merge_commutative () =
  let l1 = Log.add Log.empty (entry 1 "A" 0 (Queue_type.enq "x")) in
  let l2 = Log.add Log.empty (entry 2 "B" 0 (Queue_type.enq "y")) in
  check_bool "commutative" true (Log.equal (Log.merge l1 l2) (Log.merge l2 l1))

let test_log_entries_sorted_by_ts () =
  let l =
    List.fold_left Log.add Log.empty
      [ entry 5 "B" 0 (Queue_type.enq "y"); entry 1 "A" 0 (Queue_type.enq "x") ]
  in
  match Log.entries l with
  | [ e1; e2 ] ->
    check_bool "sorted" true (Lamport.Timestamp.compare e1.Log.ets e2.Log.ets < 0)
  | _ -> Alcotest.fail "expected two entries"

let test_log_status_records () =
  let a = Action.of_string "A" in
  let l = Log.add Log.empty (Log.Commit_record (a, ts 9)) in
  check_bool "commit ts" true
    (match Log.commit_ts l a with Some t -> Lamport.Timestamp.equal t (ts 9) | None -> false);
  check_bool "not aborted" false (Log.is_aborted l a);
  let l' = Log.add Log.empty (Log.Abort_record a) in
  check_bool "aborted" true (Log.is_aborted l' a)

(* --- Repository --- *)

let test_repository_stable_storage () =
  let r = Repository.create ~site:0 () in
  Repository.append r [ entry 1 "A" 0 (Queue_type.enq "x") ];
  check_int "stored" 1 (Log.size (Repository.read r))

let test_repository_intentions_cleared_by_entry () =
  let r = Repository.create ~site:0 () in
  let a = Action.of_string "A" in
  Repository.intend r { Repository.i_action = a; i_op = "Enq"; i_bts = ts 1; i_seq = 0 };
  check_int "one intention" 1 (List.length (Repository.intentions r));
  Repository.append r [ entry 2 "A" 0 (Queue_type.enq "x") ];
  check_int "cleared by its entry" 0 (List.length (Repository.intentions r))

let test_repository_intentions_cleared_by_status () =
  let r = Repository.create ~site:0 () in
  let a = Action.of_string "A" in
  Repository.intend r { Repository.i_action = a; i_op = "Enq"; i_bts = ts 1; i_seq = 0 };
  Repository.append r [ Log.Abort_record a ];
  check_int "cleared by abort" 0 (List.length (Repository.intentions r))

let test_repository_release () =
  let r = Repository.create ~site:0 () in
  let a = Action.of_string "A" in
  Repository.intend r { Repository.i_action = a; i_op = "Enq"; i_bts = ts 1; i_seq = 0 };
  Repository.intend r { Repository.i_action = a; i_op = "Deq"; i_bts = ts 1; i_seq = 1 };
  Repository.release r a 0;
  check_int "one left" 1 (List.length (Repository.intentions r))

(* --- View --- *)

let test_view_classification () =
  let a = Action.of_string "A" and b = Action.of_string "B" in
  let log =
    List.fold_left Log.add Log.empty
      [
        entry 1 "A" 0 (Queue_type.enq "x");
        entry 2 "B" 0 (Queue_type.enq "y");
        Log.Commit_record (a, ts 3);
      ]
  in
  let view = View.classify log in
  check_int "one committed" 1 (List.length view.View.committed);
  check_int "one tentative" 1 (List.length view.View.tentative);
  ignore b

let test_view_commit_ts_order () =
  (* Commit timestamps, not entry timestamps, order the committed events. *)
  let a = Action.of_string "A" and b = Action.of_string "B" in
  let log =
    List.fold_left Log.add Log.empty
      [
        entry 1 "A" 0 (Queue_type.enq "x");
        entry 2 "B" 0 (Queue_type.enq "y");
        Log.Commit_record (a, ts 9);
        Log.Commit_record (b, ts 5);
      ]
  in
  let view = View.classify log in
  Alcotest.(check (list string))
    "B first" [ "Enq(y);Ok()"; "Enq(x);Ok()" ]
    (List.map Event.to_string (View.committed_events view));
  ignore (a, b)

let test_view_drops_aborted () =
  let a = Action.of_string "A" in
  let log =
    List.fold_left Log.add Log.empty
      [ entry 1 "A" 0 (Queue_type.enq "x"); Log.Abort_record a ]
  in
  let view = View.classify log in
  check_int "nothing" 0
    (List.length view.View.committed + List.length view.View.tentative)

(* --- End-to-end runtime, per scheme --- *)

let schemes = [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ]

let run_and_check ?(install_faults = fun _ -> ()) ?(n_txns = 40) scheme seed =
  let cfg =
    { Runtime.default_config with scheme; n_txns; seed; install_faults }
  in
  let outcome = Runtime.run cfg in
  (cfg, outcome)

let test_scheme_histories_atomic scheme () =
  List.iter
    (fun seed ->
      let cfg, outcome = run_and_check scheme seed in
      Alcotest.(check (list (pair string string)))
        "no atomicity failures" []
        (Runtime.check_atomicity cfg outcome);
      Alcotest.(check (list (pair string string)))
        "no order failures" []
        (Runtime.check_common_order cfg outcome))
    [ 1; 2; 3 ]

let test_scheme_under_faults scheme () =
  let faults net = Atomrep_sim.Fault.crash_recover_all net ~mtbf:300.0 ~mttr:120.0 in
  List.iter
    (fun seed ->
      let cfg, outcome = run_and_check ~install_faults:faults ~n_txns:60 scheme seed in
      Alcotest.(check (list (pair string string)))
        "atomic despite faults" []
        (Runtime.check_atomicity cfg outcome))
    [ 5; 6 ]

let test_progress () =
  List.iter
    (fun scheme ->
      let _, outcome = run_and_check scheme 9 in
      check_bool
        (Replicated.scheme_name scheme ^ " commits most transactions")
        true
        (outcome.Runtime.metrics.Runtime.committed > 20))
    schemes

let test_accounting () =
  let _, outcome = run_and_check Replicated.Hybrid 4 in
  let m = outcome.Runtime.metrics in
  check_int "aborted = sum of causes" m.Runtime.aborted
    (m.Runtime.unavailable_aborts + m.Runtime.rejected_aborts + m.Runtime.conflict_aborts)

let test_deterministic_runs () =
  let _, o1 = run_and_check Replicated.Hybrid 13 in
  let _, o2 = run_and_check Replicated.Hybrid 13 in
  check_int "same committed" o1.Runtime.metrics.Runtime.committed
    o2.Runtime.metrics.Runtime.committed;
  check_int "same ops" o1.Runtime.metrics.Runtime.ops_done o2.Runtime.metrics.Runtime.ops_done;
  check_bool "same histories" true (o1.Runtime.histories = o2.Runtime.histories)

let test_total_site_failure_blocks_everything () =
  let faults net =
    Atomrep_sim.Engine.schedule (Atomrep_sim.Network.engine net) ~delay:0.0 (fun () ->
        for s = 0 to Atomrep_sim.Network.n_sites net - 1 do
          Atomrep_sim.Network.crash net s
        done)
  in
  let cfg, outcome = run_and_check ~install_faults:faults ~n_txns:10 Replicated.Hybrid 3 in
  ignore cfg;
  check_int "nothing commits" 0 outcome.Runtime.metrics.Runtime.committed

let test_multi_object_transactions () =
  let relation = Static_dep.minimal Queue_type.spec ~max_len:4 in
  let assignment = Runtime.default_queue_assignment ~n_sites:3 in
  let objects =
    List.map
      (fun name ->
        {
          Runtime.obj_name = name;
          obj_spec = Queue_type.spec;
          obj_relation = relation;
          obj_assignment = assignment;
            obj_members = None;
        })
      [ "q1"; "q2" ]
  in
  let script rng _ =
    let target = if Atomrep_stats.Rng.bool rng then "q1" else "q2" in
    let other = if target = "q1" then "q2" else "q1" in
    [
      { Runtime.target; invocation = Queue_type.enq_inv "x" };
      { Runtime.target = other; invocation = Queue_type.deq_inv };
    ]
  in
  List.iter
    (fun scheme ->
      let cfg =
        { Runtime.default_config with scheme; objects; script; n_txns = 30; seed = 21 }
      in
      let outcome = Runtime.run cfg in
      Alcotest.(check (list (pair string string)))
        (Replicated.scheme_name scheme ^ " atomic")
        [] (Runtime.check_atomicity cfg outcome);
      Alcotest.(check (list (pair string string)))
        (Replicated.scheme_name scheme ^ " common order")
        [] (Runtime.check_common_order cfg outcome))
    schemes

(* --- Available copies vs quorum consensus (§2) --- *)

let test_available_copies_violates_serializability () =
  let outcome =
    Available_copies.run ~seed:3 ~n_sites:4 ~txns_per_side:2 ~partition_at:100.0
      ~heal_at:200.0 ()
  in
  check_bool "commits on both sides" true (outcome.Available_copies.committed >= 4);
  check_bool "not serializable" false outcome.Available_copies.serializable

let test_quorum_consensus_survives_partition () =
  let committed, aborted, serializable =
    Available_copies.quorum_reference ~seed:3 ~n_sites:4 ~txns_per_side:2
      ~partition_at:100.0 ~heal_at:200.0 ()
  in
  check_bool "some commits" true (committed > 0);
  check_bool "some aborts (minority side)" true (aborted > 0);
  check_bool "serializable" true serializable

let test_available_copies_fine_without_partition () =
  let outcome =
    Available_copies.run ~seed:3 ~n_sites:4 ~txns_per_side:0 ~partition_at:1000.0
      ~heal_at:1001.0 ()
  in
  check_bool "serializable without partition" true outcome.Available_copies.serializable

let suites =
  [
    ( "replica",
      [
        Alcotest.test_case "log merge idempotent" `Quick test_log_merge_idempotent;
        Alcotest.test_case "log merge commutative" `Quick test_log_merge_commutative;
        Alcotest.test_case "log entries sorted" `Quick test_log_entries_sorted_by_ts;
        Alcotest.test_case "log status records" `Quick test_log_status_records;
        Alcotest.test_case "repository stable storage" `Quick test_repository_stable_storage;
        Alcotest.test_case "intentions cleared by entry" `Quick test_repository_intentions_cleared_by_entry;
        Alcotest.test_case "intentions cleared by status" `Quick test_repository_intentions_cleared_by_status;
        Alcotest.test_case "intention release" `Quick test_repository_release;
        Alcotest.test_case "view classification" `Quick test_view_classification;
        Alcotest.test_case "view commit-ts order" `Quick test_view_commit_ts_order;
        Alcotest.test_case "view drops aborted" `Quick test_view_drops_aborted;
        Alcotest.test_case "hybrid histories atomic" `Slow (test_scheme_histories_atomic Replicated.Hybrid);
        Alcotest.test_case "static histories atomic" `Slow (test_scheme_histories_atomic Replicated.Static);
        Alcotest.test_case "locking histories atomic" `Slow (test_scheme_histories_atomic Replicated.Locking);
        Alcotest.test_case "hybrid atomic under faults" `Slow (test_scheme_under_faults Replicated.Hybrid);
        Alcotest.test_case "static atomic under faults" `Slow (test_scheme_under_faults Replicated.Static);
        Alcotest.test_case "locking atomic under faults" `Slow (test_scheme_under_faults Replicated.Locking);
        Alcotest.test_case "progress" `Slow test_progress;
        Alcotest.test_case "abort accounting" `Quick test_accounting;
        Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
        Alcotest.test_case "total failure blocks commits" `Quick test_total_site_failure_blocks_everything;
        Alcotest.test_case "multi-object transactions" `Slow test_multi_object_transactions;
        Alcotest.test_case "available copies violates serializability" `Quick
          test_available_copies_violates_serializability;
        Alcotest.test_case "quorum consensus survives partition" `Quick
          test_quorum_consensus_survives_partition;
        Alcotest.test_case "available copies fine without partition" `Quick
          test_available_copies_fine_without_partition;
      ] );
  ]
