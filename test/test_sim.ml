open Atomrep_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_engine_orders_by_time () =
  let engine = Engine.create ~seed:1 in
  let order = ref [] in
  Engine.schedule engine ~delay:10.0 (fun () -> order := 2 :: !order);
  Engine.schedule engine ~delay:5.0 (fun () -> order := 1 :: !order);
  Engine.schedule engine ~delay:20.0 (fun () -> order := 3 :: !order);
  Engine.run engine;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_fifo_at_same_time () =
  let engine = Engine.create ~seed:1 in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.schedule engine ~delay:1.0 (fun () -> order := i :: !order)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_now_advances () =
  let engine = Engine.create ~seed:1 in
  let seen = ref 0.0 in
  Engine.schedule engine ~delay:7.5 (fun () -> seen := Engine.now engine);
  Engine.run engine;
  check_float "time at event" 7.5 !seen

let test_engine_nested_scheduling () =
  let engine = Engine.create ~seed:1 in
  let count = ref 0 in
  let rec tick n =
    if n > 0 then begin
      incr count;
      Engine.schedule engine ~delay:1.0 (fun () -> tick (n - 1))
    end
  in
  tick 5;
  Engine.run engine;
  check_int "all ticks ran" 5 !count

let test_engine_until_horizon () =
  let engine = Engine.create ~seed:1 in
  let ran = ref [] in
  Engine.schedule engine ~delay:5.0 (fun () -> ran := 5 :: !ran);
  Engine.schedule engine ~delay:50.0 (fun () -> ran := 50 :: !ran);
  Engine.run ~until:10.0 engine;
  Alcotest.(check (list int)) "only early event" [ 5 ] (List.rev !ran);
  check_int "late event still pending" 1 (Engine.pending engine)

let test_network_delivery () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:3 ~latency_mean:2.0 () in
  let delivered = ref false in
  Network.send net ~src:0 ~dst:1 (fun () -> delivered := true);
  Engine.run engine;
  check_bool "delivered" true !delivered

let test_network_crash_blocks_delivery () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:3 () in
  Network.crash net 1;
  let delivered = ref false in
  Network.send net ~src:0 ~dst:1 (fun () -> delivered := true);
  Engine.run engine;
  check_bool "not delivered to crashed site" false !delivered;
  check_bool "site reported down" false (Network.site_up net 1)

let test_network_recover () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Network.crash net 1;
  Network.recover net 1;
  check_bool "up again" true (Network.site_up net 1);
  Alcotest.(check (list int)) "all up" [ 0; 1 ] (Network.up_sites net)

let test_network_partition_blocks_cross_traffic () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:4 () in
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  let cross = ref false and intra = ref false in
  Network.send net ~src:0 ~dst:2 (fun () -> cross := true);
  Network.send net ~src:0 ~dst:1 (fun () -> intra := true);
  Engine.run engine;
  check_bool "cross-partition dropped" false !cross;
  check_bool "intra-partition delivered" true !intra;
  check_bool "reachable respects partition" false (Network.reachable net 0 2);
  Network.heal net;
  check_bool "healed" true (Network.reachable net 0 2)

(* Regression: sites left out of every group used to be lumped into one
   shared group, so two unlisted sites could still talk to each other. Each
   unlisted site must be isolated in its own singleton group. *)
let test_network_partition_unlisted_sites_isolated () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:4 () in
  Network.partition net [ [ 0; 1 ] ];
  check_bool "unlisted pair cannot talk" false (Network.reachable net 2 3);
  check_bool "unlisted cut from listed" false (Network.reachable net 0 2);
  check_bool "listed group intact" true (Network.reachable net 0 1);
  let cross = ref false in
  Network.send net ~src:2 ~dst:3 (fun () -> cross := true);
  Engine.run engine;
  check_bool "unlisted-to-unlisted dropped" false !cross;
  Network.heal net;
  check_bool "healed" true (Network.reachable net 2 3)

let test_network_drop_probability () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 ~drop_probability:1.0 () in
  let delivered = ref false in
  Network.send net ~src:0 ~dst:1 (fun () -> delivered := true);
  Engine.run engine;
  check_bool "always dropped" false !delivered

let test_self_send_never_drops () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 ~drop_probability:1.0 () in
  let delivered = ref false in
  Network.send net ~src:0 ~dst:0 (fun () -> delivered := true);
  Engine.run engine;
  check_bool "self delivery" true !delivered

let test_rpc_roundtrip () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  let result = ref None in
  Rpc.call net ~src:0 ~dst:1 ~timeout:100.0
    ~handler:(fun () -> 42)
    ~reply:(fun r -> result := r);
  Engine.run engine;
  Alcotest.(check (option int)) "roundtrip" (Some 42) !result

let test_rpc_timeout_on_crash () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Network.crash net 1;
  let result = ref (Some 0) in
  Rpc.call net ~src:0 ~dst:1 ~timeout:30.0
    ~handler:(fun () -> 42)
    ~reply:(fun r -> result := r);
  Engine.run engine;
  Alcotest.(check (option int)) "timeout" None !result

let test_rpc_reply_exactly_once () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  let count = ref 0 in
  Rpc.call net ~src:0 ~dst:1 ~timeout:1000.0
    ~handler:(fun () -> ())
    ~reply:(fun _ -> incr count);
  Engine.run engine;
  check_int "exactly once" 1 !count

let test_multicast_gathers_all_up () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:4 () in
  Network.crash net 3;
  let gathered = ref [] in
  Rpc.multicast net ~src:0 ~dsts:[ 0; 1; 2; 3 ] ~timeout:30.0
    ~handler:(fun site -> site * 10)
    ~gather:(fun replies -> gathered := replies);
  Engine.run engine;
  check_int "three replies" 3 (List.length !gathered);
  check_bool "crashed missing" true (not (List.mem_assoc 3 !gathered))

let test_multicast_empty () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  let called = ref false in
  Rpc.multicast net ~src:0 ~dsts:[] ~timeout:10.0
    ~handler:(fun _ -> ())
    ~gather:(fun replies -> called := replies = []);
  Engine.run engine;
  check_bool "gather called with empty" true !called

let test_fault_crash_recover_cycles () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:1 () in
  Fault.crash_recover net ~site:0 ~mtbf:10.0 ~mttr:5.0;
  Engine.run ~until:200.0 engine;
  (* The process keeps scheduling events forever; reaching the horizon with
     pending events proves it cycles. *)
  check_bool "cycle continues" true (Engine.pending engine > 0)

let test_periodic_partition_heals () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:2 () in
  Fault.periodic_partition net ~groups:[ [ 0 ]; [ 1 ] ] ~every:50.0 ~duration:10.0;
  let during = ref true and after = ref false in
  Engine.schedule engine ~delay:55.0 (fun () -> during := Network.reachable net 0 1);
  Engine.schedule engine ~delay:70.0 (fun () -> after := Network.reachable net 0 1);
  Engine.run ~until:80.0 engine;
  check_bool "partitioned during window" false !during;
  check_bool "healed after window" true !after

let suites =
  [
    ( "simulator",
      [
        Alcotest.test_case "events ordered by time" `Quick test_engine_orders_by_time;
        Alcotest.test_case "FIFO at equal times" `Quick test_engine_fifo_at_same_time;
        Alcotest.test_case "clock advances" `Quick test_engine_now_advances;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "horizon" `Quick test_engine_until_horizon;
        Alcotest.test_case "network delivery" `Quick test_network_delivery;
        Alcotest.test_case "crash blocks delivery" `Quick test_network_crash_blocks_delivery;
        Alcotest.test_case "recovery" `Quick test_network_recover;
        Alcotest.test_case "partition semantics" `Quick test_network_partition_blocks_cross_traffic;
        Alcotest.test_case "partition isolates unlisted sites" `Quick
          test_network_partition_unlisted_sites_isolated;
        Alcotest.test_case "message loss" `Quick test_network_drop_probability;
        Alcotest.test_case "self-send reliable" `Quick test_self_send_never_drops;
        Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
        Alcotest.test_case "rpc timeout" `Quick test_rpc_timeout_on_crash;
        Alcotest.test_case "rpc replies exactly once" `Quick test_rpc_reply_exactly_once;
        Alcotest.test_case "multicast gathers" `Quick test_multicast_gathers_all_up;
        Alcotest.test_case "multicast empty" `Quick test_multicast_empty;
        Alcotest.test_case "crash/recover cycles" `Quick test_fault_crash_recover_cycles;
        Alcotest.test_case "periodic partition" `Quick test_periodic_partition_heals;
      ] );
  ]
