open Atomrep_stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check_bool "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  check_bool "split differs from parent" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_exponential_positive () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    check_bool "positive" true (Rng.exponential rng 3.0 >= 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 5.0
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 5" true (abs_float (mean -. 5.0) < 0.3)

let test_shuffle_is_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check_bool "same elements" true (sorted = Array.init 20 Fun.id)

let test_summary_basics () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Summary.count s);
  check_float "mean" 2.5 (Summary.mean s);
  check_float "total" 10.0 (Summary.total s);
  check_float "min" 1.0 (Summary.min_value s);
  check_float "max" 4.0 (Summary.max_value s)

let test_summary_stddev () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  (* Sample stddev of the classic example: sqrt(32/7). *)
  check_bool "stddev" true (abs_float (Summary.stddev s -. sqrt (32.0 /. 7.0)) < 1e-9)

let test_summary_percentile () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  check_float "median" 50.0 (Summary.percentile s 0.5);
  check_float "p99" 99.0 (Summary.percentile s 0.99);
  check_float "p100" 100.0 (Summary.percentile s 1.0)

let test_summary_empty () =
  let s = Summary.create () in
  check_float "mean of empty" 0.0 (Summary.mean s);
  check_float "stddev of empty" 0.0 (Summary.stddev s);
  (* Percentiles and extrema of an empty summary are 0, not nan/inf — the
     JSON exporters rely on this. *)
  check_float "p50 of empty" 0.0 (Summary.percentile s 0.5);
  check_float "p99 of empty" 0.0 (Summary.percentile s 0.99);
  check_float "min of empty" 0.0 (Summary.min_value s);
  check_float "max of empty" 0.0 (Summary.max_value s)

let test_summary_single_sample () =
  let s = Summary.create () in
  Summary.add s 7.0;
  (* Every percentile of a single observation is that observation. *)
  List.iter
    (fun p -> check_float "single sample" 7.0 (Summary.percentile s p))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ]

let test_summary_percentile_ranks () =
  let s = Summary.create () in
  (* Insertion order must not matter: add 1..20 shuffled. *)
  List.iter
    (fun i -> Summary.add s (float_of_int i))
    [ 13; 2; 20; 7; 19; 1; 8; 14; 3; 16; 5; 10; 18; 4; 11; 6; 15; 9; 17; 12 ];
  (* Nearest-rank: p50 of 20 samples is the 10th, p95 the 19th, p99 the
     20th — the rank computation must not lose the boundary to float
     rounding (0.95 *. 20. is 18.999...). *)
  check_float "p50" 10.0 (Summary.percentile s 0.5);
  check_float "p95" 19.0 (Summary.percentile s 0.95);
  check_float "p99" 20.0 (Summary.percentile s 0.99)

let test_summary_observations_in_order () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 3.0; 1.0; 2.0 ];
  check_bool "insertion order preserved" true
    (Summary.observations s = [ 3.0; 1.0; 2.0 ])

let test_table_rendering () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  check_bool "has title" true
    (String.length rendered > 0
    && String.sub rendered 0 8 = "== demo ");
  (* Rows render in insertion order. *)
  let lines = String.split_on_char '\n' rendered in
  check_int "line count" 6 (List.length lines)

let test_table_wrong_arity () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only one" ])

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "rng int range" `Quick test_rng_int_range;
        Alcotest.test_case "rng float range" `Quick test_rng_float_range;
        Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "rng exponential positive" `Quick test_rng_exponential_positive;
        Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
        Alcotest.test_case "summary basics" `Quick test_summary_basics;
        Alcotest.test_case "summary stddev" `Quick test_summary_stddev;
        Alcotest.test_case "summary percentile" `Quick test_summary_percentile;
        Alcotest.test_case "summary empty" `Quick test_summary_empty;
        Alcotest.test_case "summary single sample" `Quick test_summary_single_sample;
        Alcotest.test_case "summary percentile ranks" `Quick
          test_summary_percentile_ranks;
        Alcotest.test_case "summary observations order" `Quick
          test_summary_observations_in_order;
        Alcotest.test_case "table rendering" `Quick test_table_rendering;
        Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
      ] );
  ]
