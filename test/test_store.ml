(* Stable storage: the simulated WAL's flush/crash/recover contract,
   checkpoint compaction, storage fault injection, the durable repository
   wiring, and the corrupted-segment -> quorum-gated-resync path. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_clock
open Atomrep_sim
open Atomrep_replica
module Wal = Atomrep_store.Wal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ts c = { Lamport.Timestamp.counter = c; site = 0 }

let entry c name seq event =
  Log.Entry
    {
      Log.ets = ts c;
      action = Action.of_string name;
      begin_ts = ts c;
      seq;
      event;
    }

(* --- WAL unit tests --- *)

let test_crash_drops_unflushed_suffix () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append w "b";
  (match Wal.flush w with Ok 2 -> () | _ -> Alcotest.fail "flush");
  Wal.append w "c";
  Wal.crash w;
  let r = Wal.recover w in
  Alcotest.(check (list string)) "flushed prefix" [ "a"; "b" ] r.Wal.tail;
  check_int "replayed" 2 r.Wal.replayed;
  check_int "nothing truncated" 0 r.Wal.truncated;
  check_bool "not corrupt" false r.Wal.corrupt

let test_torn_tail_truncated_not_corrupt () =
  let w = Wal.create () in
  Wal.append w "a";
  ignore (Wal.flush w);
  Wal.inject w Wal.Torn_write;
  Wal.append w "b";
  Wal.crash w;
  check_int "torn write persisted" 2 (Wal.durable_size w);
  let r = Wal.recover w in
  Alcotest.(check (list string)) "prefix survives" [ "a" ] r.Wal.tail;
  check_int "torn record dropped" 1 r.Wal.truncated;
  check_bool "an expected torn tail, not corruption" false r.Wal.corrupt;
  check_int "torn writes counted" 1 (Wal.stats w).Wal.torn_writes;
  (* Truncation is physical, so a second recovery is a fixpoint. *)
  let r2 = Wal.recover w in
  Alcotest.(check (list string)) "same prefix" [ "a" ] r2.Wal.tail;
  check_int "nothing left to truncate" 0 r2.Wal.truncated

let test_mid_log_bit_rot_is_corruption () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "a"; "b"; "c" ];
  ignore (Wal.flush w);
  Wal.inject w (Wal.Bit_rot 1) (* second-oldest durable record *);
  let r = Wal.recover w in
  Alcotest.(check (list string)) "valid prefix only" [ "a" ] r.Wal.tail;
  check_int "rotted record and its suffix dropped" 2 r.Wal.truncated;
  check_bool "detected as corruption" true r.Wal.corrupt;
  check_int "rot counted" 1 (Wal.stats w).Wal.rotted

let test_lost_flush_persists_nothing () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.inject w Wal.Lost_flush;
  (match Wal.flush w with
  | Ok 1 -> () (* the barrier was acknowledged... *)
  | _ -> Alcotest.fail "lost flush still acks");
  Wal.crash w;
  let r = Wal.recover w in
  check_int "...but nothing hit the platter" 0 r.Wal.replayed;
  check_int "lost flush counted" 1 (Wal.stats w).Wal.lost_flushes

let test_disk_full_rejects_until_freed () =
  let w = Wal.create () in
  Wal.inject w Wal.Disk_full;
  Wal.append w "a";
  (match Wal.flush w with
  | Error `Disk_full -> ()
  | Ok _ -> Alcotest.fail "full disk must reject the barrier");
  check_int "rejection counted" 1 (Wal.stats w).Wal.full_rejections;
  Wal.inject w Wal.Disk_free;
  (match Wal.flush w with
  | Ok 1 -> () (* the buffer survived the rejection *)
  | _ -> Alcotest.fail "freed disk flushes the retained buffer");
  check_int "durable now" 1 (Wal.durable_size w)

let test_segments_roll_and_checkpoint_compacts () =
  let w = Wal.create ~segment_records:4 () in
  for i = 1 to 10 do
    Wal.append w (string_of_int i);
    ignore (Wal.flush w)
  done;
  check_int "segments rolled" 3 (Wal.segments w);
  check_int "ten durable records" 10 (Wal.durable_size w);
  (match Wal.checkpoint w [ "s1"; "s2" ] with
  | Ok 3 -> () (* three segments compacted away *)
  | _ -> Alcotest.fail "checkpoint");
  check_int "one segment left" 1 (Wal.segments w);
  check_int "one snapshot cell" 1 (Wal.durable_size w);
  Wal.append w "t";
  ignore (Wal.flush w);
  let r = Wal.recover w in
  Alcotest.(check (list string)) "snapshot restored" [ "s1"; "s2" ] r.Wal.snapshot;
  Alcotest.(check (list string)) "tail after the checkpoint" [ "t" ] r.Wal.tail;
  check_int "replay = snapshot + tail" 3 r.Wal.replayed

(* --- qcheck: recovery is exact and idempotent --- *)

(* For any seed-derived schedule of appends, flushes, and armed torn
   writes, crash-recovery replays exactly the flushed prefix, and
   replay . crash . replay is a fixpoint. *)
let prop_recovery_exact_and_idempotent =
  QCheck2.Test.make ~name:"recovery replays exactly the flushed prefix"
    ~count:300 QCheck2.Gen.nat (fun seed ->
      let rng = Atomrep_stats.Rng.create seed in
      let w =
        Wal.create ~segment_records:(1 + Atomrep_stats.Rng.int rng 7) ()
      in
      let flushed = ref [] (* newest first *) and buffered = ref [] in
      for i = 1 to 2 + Atomrep_stats.Rng.int rng 40 do
        match Atomrep_stats.Rng.int rng 4 with
        | 0 | 1 ->
          Wal.append w i;
          buffered := i :: !buffered
        | 2 ->
          ignore (Wal.flush w);
          flushed := !buffered @ !flushed;
          buffered := []
        | _ -> Wal.inject w Wal.Torn_write
      done;
      Wal.crash w;
      let expect = List.rev !flushed in
      let r = Wal.recover w in
      let r2 =
        Wal.crash w;
        Wal.recover w
      in
      r.Wal.snapshot = [] && r.Wal.tail = expect && not r.Wal.corrupt
      && r2.Wal.tail = expect && r2.Wal.truncated = 0)

(* --- repository durability --- *)

(* The amnesia high-watermark regression: the volatile watermark must be
   recomputed from the stable log. Before the fix, a site that had merely
   witnessed a tentative timestamp kept claiming it after amnesia — i.e.
   it over-witnessed a timestamp it never durably saw. *)
let test_volatile_amnesia_recomputes_high () =
  let r = Repository.create ~site:0 () in
  Repository.append r
    [
      entry 1 "A" 0 (Queue_type.enq "x");
      Log.Commit_record (Action.of_string "A", ts 5);
    ];
  Repository.append r [ entry 10 "B" 0 (Queue_type.enq "y") ] (* tentative *);
  check_int "watermark witnessed the tentative entry" 10
    (Repository.high_ts r).Lamport.Timestamp.counter;
  Repository.amnesia r;
  check_int "after amnesia: largest durably-seen timestamp" 5
    (Repository.high_ts r).Lamport.Timestamp.counter

let test_durable_amnesia_keeps_flushed_prefix_only () =
  let r =
    Repository.create ~durability:(Repository.durable ~group_commit:true ())
      ~site:0 ()
  in
  (* Entry-only batch under group commit: buffered, not yet durable. *)
  Repository.append r [ entry 1 "A" 0 (Queue_type.enq "x") ];
  (match Repository.store r with
  | Some w -> check_int "group commit defers the barrier" 0 (Wal.durable_size w)
  | None -> Alcotest.fail "durable repository must expose its WAL");
  Repository.amnesia r;
  (match Repository.recover r with
  | Some rec1 -> check_int "nothing was durable" 0 rec1.Repository.r_replayed
  | None -> Alcotest.fail "durable recover");
  check_int "log empty after recovery" 0 (Log.size (Repository.read r));
  (* A batch carrying a commit record flushes everything buffered. *)
  Repository.append r [ entry 2 "A" 0 (Queue_type.enq "x") ];
  Repository.append r [ Log.Commit_record (Action.of_string "A", ts 7) ];
  Repository.amnesia r;
  (match Repository.recover r with
  | Some rec2 -> check_int "both records replayed" 2 rec2.Repository.r_replayed
  | None -> Alcotest.fail "durable recover");
  let log = Repository.read r in
  check_int "entry restored" 1 (List.length (Log.entries log));
  check_bool "commit restored" true
    (Option.is_some (Log.commit_ts log (Action.of_string "A")));
  check_int "watermark restored from the WAL" 7
    (Repository.high_ts r).Lamport.Timestamp.counter

let test_epoch_fencing_is_durable () =
  let r =
    Repository.create ~durability:(Repository.durable ~group_commit:true ())
      ~site:0 ()
  in
  Repository.advance_epoch r 3;
  (match Repository.store r with
  | Some w ->
    check_bool "epoch joins flush immediately, group commit or not" true
      (Wal.durable_size w >= 1)
  | None -> Alcotest.fail "durable repository must expose its WAL");
  Repository.amnesia r;
  ignore (Repository.recover r);
  check_int "epoch survives crash via the WAL" 3 (Repository.epoch r)

(* Checkpoint compaction is observationally invisible: for every type in
   the registry, a compacted-then-recovered repository computes the same
   view, high watermark, and epoch as an uncompacted one. *)
let test_checkpoint_observational_equality_all_types () =
  List.iter
    (fun (name, spec) ->
      let events =
        List.filteri (fun i _ -> i < 6) (Serial_spec.event_universe spec ~max_len:3)
      in
      let records =
        List.concat
          (List.mapi
             (fun i ev ->
               let a = "A" ^ string_of_int i in
               entry (i + 1) a 0 ev
               ::
               (if i = 1 then [ Log.Abort_record (Action.of_string a) ]
                else if i mod 2 = 0 then
                  [ Log.Commit_record (Action.of_string a, ts (100 + i)) ]
                else []))
             events)
      in
      let mk () =
        let r =
          Repository.create
            ~durability:(Repository.durable ~segment_records:4 ())
            ~site:0 ()
        in
        List.iter (fun rc -> Repository.append r [ rc ]) records;
        Repository.advance_epoch r 2;
        r
      in
      let compacted = mk () and plain = mk () in
      Repository.checkpoint compacted;
      List.iter Repository.amnesia [ compacted; plain ];
      List.iter (fun r -> ignore (Repository.recover r)) [ compacted; plain ];
      let observe r =
        let v = View.classify (Repository.read r) in
        ( List.map Event.to_string (View.committed_events v),
          List.length v.View.tentative,
          Repository.high_ts r,
          Repository.epoch r )
      in
      check_bool (name ^ ": compaction observationally invisible") true
        (observe compacted = observe plain))
    Type_registry.all

(* --- corrupted segment -> quorum-gated resync (acceptance) --- *)

let test_corrupt_recovery_routed_through_resync () =
  let engine = Engine.create ~seed:7 in
  let net = Network.create engine ~n_sites:3 () in
  Network.set_resync_quorum net 2;
  let obj =
    Replicated.create ~name:"q" ~spec:Queue_type.spec ~scheme:Replicated.Hybrid
      ~relation:(Static_dep.minimal Queue_type.spec ~max_len:3)
      ~assignment:(Runtime.default_queue_assignment ~n_sites:3)
      ~net ~durability:(Repository.durable ()) ()
  in
  Replicated.broadcast_status obj
    (Log.Commit_record (Action.of_string "T0", ts 5))
    ~reachable_from:0;
  Engine.run engine;
  (* Site 2 crashes; while it is down its durable log rots, and it misses
     a second commit entirely. *)
  Network.crash_with_amnesia net 2;
  Network.inject_storage_fault net ~site:2 (Wal.Bit_rot 0);
  Replicated.broadcast_status obj
    (Log.Commit_record (Action.of_string "T1", ts 6))
    ~reachable_from:0;
  Engine.run engine;
  (* With only one live peer the rejoin is refused: no recovery runs, the
     corrupt log is not served. *)
  Network.crash net 1;
  check_bool "resync quorum gates the rejoin" false (Network.recover_resync net 2);
  check_int "no recovery before the quorum" 0 (List.length (Replicated.recoveries obj));
  Network.recover net 1;
  check_bool "rejoin accepted with a quorum" true (Network.recover_resync net 2);
  (match Replicated.recoveries obj with
  | [ r ] ->
    check_int "recovered site" 2 r.Repository.r_site;
    check_bool "corruption detected at recovery" true r.Repository.r_corrupt;
    check_int "corrupt suffix discarded" 0 r.Repository.r_replayed
  | l -> Alcotest.failf "expected one recovery, got %d" (List.length l));
  let log = Replicated.repository_log obj ~site:2 in
  check_bool "rotted record restored by peer resync" true
    (Option.is_some (Log.commit_ts log (Action.of_string "T0")));
  check_bool "missed record restored by peer resync" true
    (Option.is_some (Log.commit_ts log (Action.of_string "T1")));
  check_int "fault counted" 1 (Network.stats net).Network.storage_faults

(* --- storage_storm campaign and determinism --- *)

let storage_storm () =
  match Atomrep_chaos.Campaign.find_profile "storage_storm" with
  | Some p -> p
  | None -> Alcotest.fail "storage_storm profile missing"

let test_storage_storm_campaign_clean () =
  let module Campaign = Atomrep_chaos.Campaign in
  let report =
    Campaign.run_campaign ~base:Campaign.storage_base
      ~schemes:[ Replicated.Hybrid ]
      ~profiles:[ storage_storm () ]
      ~seeds:3 ()
  in
  check_int "three runs" 3 report.Campaign.total_runs;
  check_bool "no violations under storage faults" true
    (report.Campaign.violations = [])

let test_durable_runs_deterministic () =
  let module Campaign = Atomrep_chaos.Campaign in
  let cfg =
    Campaign.configure ~base:Campaign.storage_base ~scheme:Replicated.Hybrid
      ~seed:11 ~n_txns:25 ~intensity:1.0 (storage_storm ())
  in
  let o1 = Runtime.run cfg and o2 = Runtime.run cfg in
  let m1 = o1.Runtime.metrics and m2 = o2.Runtime.metrics in
  check_int "committed" m1.Runtime.committed m2.Runtime.committed;
  check_int "wal flushes" m1.Runtime.wal_flushes m2.Runtime.wal_flushes;
  check_int "flushed records" m1.Runtime.wal_flushed_records
    m2.Runtime.wal_flushed_records;
  check_int "torn writes" m1.Runtime.wal_torn_writes m2.Runtime.wal_torn_writes;
  check_int "rotted" m1.Runtime.wal_rotted m2.Runtime.wal_rotted;
  check_int "checkpoints" m1.Runtime.wal_checkpoints m2.Runtime.wal_checkpoints;
  check_int "recoveries" m1.Runtime.recoveries m2.Runtime.recoveries;
  check_int "storage faults" m1.Runtime.storage_faults m2.Runtime.storage_faults;
  check_bool "identical histories" true (o1.Runtime.histories = o2.Runtime.histories)

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "crash drops unflushed suffix" `Quick
          test_crash_drops_unflushed_suffix;
        Alcotest.test_case "torn tail truncated, not corrupt" `Quick
          test_torn_tail_truncated_not_corrupt;
        Alcotest.test_case "mid-log bit rot is corruption" `Quick
          test_mid_log_bit_rot_is_corruption;
        Alcotest.test_case "lost flush persists nothing" `Quick
          test_lost_flush_persists_nothing;
        Alcotest.test_case "disk full rejects until freed" `Quick
          test_disk_full_rejects_until_freed;
        Alcotest.test_case "segments roll, checkpoint compacts" `Quick
          test_segments_roll_and_checkpoint_compacts;
        QCheck_alcotest.to_alcotest prop_recovery_exact_and_idempotent;
        Alcotest.test_case "volatile amnesia recomputes high watermark" `Quick
          test_volatile_amnesia_recomputes_high;
        Alcotest.test_case "durable amnesia keeps flushed prefix" `Quick
          test_durable_amnesia_keeps_flushed_prefix_only;
        Alcotest.test_case "epoch fencing is durable" `Quick
          test_epoch_fencing_is_durable;
        Alcotest.test_case "checkpoint observationally invisible (all types)"
          `Quick test_checkpoint_observational_equality_all_types;
        Alcotest.test_case "corrupt recovery routed through resync" `Quick
          test_corrupt_recovery_routed_through_resync;
        Alcotest.test_case "storage_storm campaign clean" `Quick
          test_storage_storm_campaign_clean;
        Alcotest.test_case "durable runs deterministic" `Quick
          test_durable_runs_deterministic;
      ] );
  ]
