(* Coordinator takeover: the lease cell's monotone term algebra, the
   repository-level vote fence (stale drivers refused, certified records
   never), the no-divergence monitor over hand-built and chaos traces,
   the live stranded gauge's single-incr/single-decr lifecycle, the
   try_resolve re-broadcast dedup, and the determinism witnesses. *)

open Atomrep_history
open Atomrep_clock
open Atomrep_replica
module Termination = Atomrep_txn.Termination
module Takeover = Atomrep_txn.Takeover
module Campaign = Atomrep_chaos.Campaign
module Trace = Atomrep_obs.Trace
module Monitor = Atomrep_obs.Monitor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = List.map QCheck_alcotest.to_alcotest
let act i = Action.of_string (Printf.sprintf "T%d" i)
let ts n = { Lamport.Timestamp.counter = n; site = 0 }

(* --- the lease cell ---------------------------------------------------- *)

let test_lease_terms_are_monotone () =
  let t = Takeover.create () in
  check_int "implicit term is 0" 0 (Takeover.term_of t (act 0));
  check_bool "no grant yet" true (Takeover.current t (act 0) = None);
  check_bool "first bid wins" true
    (Takeover.grant t (act 0) ~term:2 ~holder:1 = Takeover.Granted);
  check_bool "lower bid fenced with the winning grant" true
    (Takeover.grant t (act 0) ~term:1 ~holder:2
    = Takeover.Fenced { Takeover.g_term = 2; g_holder = 1 });
  check_bool "equal-term different holder fenced (first writer wins)" true
    (Takeover.grant t (act 0) ~term:2 ~holder:2
    = Takeover.Fenced { Takeover.g_term = 2; g_holder = 1 });
  check_bool "same holder re-ack is idempotent" true
    (Takeover.grant t (act 0) ~term:2 ~holder:1 = Takeover.Granted);
  check_bool "out-bidding takes the lease" true
    (Takeover.grant t (act 0) ~term:3 ~holder:2 = Takeover.Granted);
  check_int "term advanced" 3 (Takeover.term_of t (act 0));
  (* Cells are per-action: the contest above never touched act 1. *)
  check_int "other actions unaffected" 0 (Takeover.term_of t (act 1))

let test_lease_fences_only_stale_terms () =
  let t = Takeover.create () in
  check_bool "nothing granted, nothing fenced" true
    (Takeover.fences t (act 0) ~term:0 = None);
  ignore (Takeover.grant t (act 0) ~term:2 ~holder:1);
  check_bool "implicit term 0 is now stale" true
    (Takeover.fences t (act 0) ~term:0 = Some 2);
  check_bool "term below the grant is stale" true
    (Takeover.fences t (act 0) ~term:1 = Some 2);
  check_bool "the holder's own term passes" true
    (Takeover.fences t (act 0) ~term:2 = None);
  check_bool "higher terms pass" true (Takeover.fences t (act 0) ~term:3 = None)

let test_lease_forget_is_amnesia () =
  let t = Takeover.create () in
  ignore (Takeover.grant t (act 0) ~term:5 ~holder:2);
  Takeover.forget t;
  check_int "grants are volatile" 0 (Takeover.term_of t (act 0));
  check_bool "no fence survives a crash" true
    (Takeover.fences t (act 0) ~term:0 = None);
  (* Forgetting widens who may drive, never what can be decided: a lower
     term can now win again. *)
  check_bool "term 1 wins after amnesia" true
    (Takeover.grant t (act 0) ~term:1 ~holder:0 = Takeover.Granted)

(* --- the repository fence ---------------------------------------------- *)

let test_repo_fences_stale_vote_offers () =
  let r = Repository.create ~site:1 () in
  check_int "implicit lease term" 0 (Repository.takeover_term r (act 0));
  check_bool "lease granted at term 2" true
    (Repository.grant_takeover r (act 0) ~term:2 ~holder:1 = Takeover.Granted);
  check_int "term visible" 2 (Repository.takeover_term r (act 0));
  (* The original coordinator drives at its implicit term 0: refused
     without touching the log, answered with the granted term. *)
  check_bool "stale precommit fenced" true
    (Repository.offer ~term:0 r (Log.Precommit (act 0, ts 1))
    = Repository.E_fenced 2);
  check_bool "stale preabort fenced" true
    (Repository.offer ~term:1 r (Log.Preabort (act 0)) = Repository.E_fenced 2);
  check_bool "fenced vote left no evidence" true
    (Repository.status_of r (act 0) = Repository.E_none);
  (* The lease holder votes with its own term and the vote lands. *)
  check_bool "holder's vote accepted" true
    (Repository.offer ~term:2 r (Log.Precommit (act 0, ts 1))
    = Repository.E_precommit (ts 1))

let test_repo_never_fences_certified_records () =
  let r = Repository.create ~site:1 () in
  ignore (Repository.grant_takeover r (act 0) ~term:4 ~holder:2);
  ignore (Repository.grant_takeover r (act 1) ~term:4 ~holder:2);
  (* A certified decision from a stale driver still lands: refusing one
     could strand resolved state, and agreement rests on vote stickiness,
     not on the fence. *)
  check_bool "stale commit record accepted" true
    (Repository.offer ~term:0 r (Log.Commit_record (act 0, ts 3))
    = Repository.E_committed (ts 3));
  check_bool "stale abort record accepted" true
    (Repository.offer ~term:0 r (Log.Abort_record (act 1)) = Repository.E_aborted);
  (* Unfenced offers (the legacy PR-5 paths pass no term) are never
     refused by the lease either. *)
  let r2 = Repository.create ~site:0 () in
  ignore (Repository.grant_takeover r2 (act 2) ~term:9 ~holder:1);
  check_bool "termless vote offer is unfenced" true
    (Repository.offer r2 (Log.Precommit (act 2, ts 1)) = Repository.E_precommit (ts 1))

let test_repo_amnesia_forgets_grants () =
  let r = Repository.create ~site:2 () in
  ignore (Repository.grant_takeover r (act 0) ~term:7 ~holder:1);
  Repository.amnesia r;
  check_int "lease state is volatile" 0 (Repository.takeover_term r (act 0));
  check_bool "votes pass at the implicit term again" true
    (Repository.offer ~term:0 r (Log.Precommit (act 0, ts 1))
    = Repository.E_precommit (ts 1))

(* --- the no-divergence monitor ----------------------------------------- *)

let decide tr ~txn ~site ~committed =
  ignore (Trace.emit tr ~site (Trace.Txn_decide { txn; site; committed }))

let test_monitor_accepts_redecisions () =
  let tr = Trace.create ~n_sites:3 () in
  decide tr ~txn:"T0" ~site:0 ~committed:true;
  decide tr ~txn:"T0" ~site:2 ~committed:true;
  decide tr ~txn:"T1" ~site:1 ~committed:false;
  (match Monitor.decisions tr with
   | [ v0; v1 ] ->
     check_int "T0 commit verdicts" 2 v0.Monitor.d_commits;
     check_int "T0 abort verdicts" 0 v0.Monitor.d_aborts;
     check_bool "T0 deciders in first-decision order" true
       (v0.Monitor.d_sites = [ 0; 2 ]);
     check_int "T1 abort verdicts" 1 v1.Monitor.d_aborts
   | vs -> Alcotest.fail (Printf.sprintf "expected 2 verdicts, got %d" (List.length vs)));
  check_bool "re-deciding the same outcome is legal" true
    (Monitor.no_divergence tr = [])

let test_monitor_flags_mixed_verdicts () =
  let tr = Trace.create ~n_sites:3 () in
  decide tr ~txn:"T0" ~site:0 ~committed:true;
  decide tr ~txn:"T1" ~site:1 ~committed:true;
  decide tr ~txn:"T0" ~site:2 ~committed:false;
  (match Monitor.no_divergence tr with
   | [ (txn, _) ] -> check_bool "the mixed transaction is named" true (txn = "T0")
   | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

let test_monitor_from_id_scopes_runs () =
  (* Two runs sharing a bus can reuse transaction names; from_id scopes
     the fold to the second run so the first run's opposite verdict does
     not read as divergence. *)
  let tr = Trace.create ~n_sites:3 () in
  decide tr ~txn:"T0" ~site:0 ~committed:true;
  let mark = Trace.length tr in
  decide tr ~txn:"T0" ~site:1 ~committed:false;
  check_int "unscoped fold sees the collision" 1
    (List.length (Monitor.no_divergence tr));
  check_bool "scoped fold is clean" true
    (Monitor.no_divergence ~from_id:mark tr = [])

(* --- the takeover runtime under the coordinator killer ----------------- *)

let killer_cfg ?trace ~takeover ~seed () =
  let profile =
    match Campaign.find_profile "coordinator_killer" with
    | Some p -> p
    | None -> Alcotest.fail "coordinator_killer profile missing"
  in
  {
    Runtime.default_config with
    Runtime.scheme = Replicated.Hybrid;
    n_txns = 120;
    seed;
    horizon = 40_000.0;
    install_faults =
      (fun net -> Atomrep_chaos.Nemesis.install profile.Campaign.nemesis net);
    termination = Termination.Cooperative;
    deadlock = Runtime.Detect;
    takeover;
    trace;
  }

let oracle_failures cfg outcome =
  Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome

let test_takeover_adopts_and_fences () =
  (* Seed 3 is a pinned reproducer where a healed original coordinator
     returns mid-takeover: the run must show adoptions (a lease holder
     finished someone else's transaction) and fences (a stale driver was
     refused and halted), with no divergence and the oracles intact. *)
  let tr = Trace.create ~n_sites:3 () in
  let cfg = killer_cfg ~trace:tr ~takeover:true ~seed:3 () in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_bool "leases were won" true (m.Runtime.takeover_leases > 0);
  check_bool "in-doubt transactions were adopted" true
    (m.Runtime.takeover_adoptions > 0);
  check_bool "a stale driver was fenced" true (m.Runtime.takeover_fenced > 0);
  check_int "no tentative entry stranded" 0 m.Runtime.stranded_entries;
  check_bool "no two drivers diverged" true (Monitor.no_divergence tr = []);
  check_bool "oracle holds" true (oracle_failures cfg outcome = [])

let test_stranded_gauge_lifecycle () =
  (* The live gauge is incremented once when a transaction first strands
     and decremented once when an external driver finishes it. A
     double-decrement (adoption racing the orphan reaper, re-entrant
     cooperative termination) would drive it negative; a missed decrement
     leaves it positive. Either way it cannot end at zero across seeds
     that exercise both adoption and reaping. *)
  let adoptions = ref 0 and orphans = ref 0 in
  for seed = 0 to 4 do
    let m =
      (Runtime.run (killer_cfg ~takeover:true ~seed ())).Runtime.metrics
    in
    check_int (Printf.sprintf "gauge drained at seed %d" seed) 0
      m.Runtime.stranded_live;
    check_int (Printf.sprintf "no stranding at seed %d" seed) 0
      m.Runtime.stranded_entries;
    adoptions := !adoptions + m.Runtime.takeover_adoptions;
    orphans := !orphans + m.Runtime.orphans_reaped
  done;
  check_bool "the sweep exercised adoption" true (!adoptions > 0);
  check_bool "the sweep exercised the reaper" true (!orphans > 0)

let test_rebroadcast_dedup_suppresses_repeats () =
  (* try_resolve used to re-broadcast a blocker's status to every site on
     every retry; the dedup sends each (blocker, site) pair once and
     counts the rest. Independent of takeover: pin it on the plain
     cooperative run too. *)
  let suppressed takeover =
    (Runtime.run (killer_cfg ~takeover ~seed:3 ())).Runtime.metrics
      .Runtime.rebroadcasts_suppressed
  in
  check_bool "duplicates suppressed under cooperative termination" true
    (suppressed false > 0);
  check_bool "duplicates suppressed under takeover" true (suppressed true > 0)

let test_takeover_replays_identically () =
  let run () =
    let outcome = Runtime.run (killer_cfg ~takeover:true ~seed:2 ()) in
    (outcome.Runtime.metrics, outcome.Runtime.histories)
  in
  let m1, h1 = run () and m2, h2 = run () in
  check_bool "metrics identical" true (m1 = m2);
  check_bool "histories identical" true (h1 = h2)

(* --- properties: no divergence under the storm ------------------------- *)

let takeover_storm () =
  match Campaign.find_profile "takeover_storm" with
  | Some p -> p
  | None -> Alcotest.fail "takeover_storm profile missing"

let prop_no_divergence_under_storm =
  QCheck2.Test.make ~name:"takeover storm never diverges" ~count:8
    QCheck2.Gen.(pair (int_range 0 200) (int_range 5 20))
    (fun (seed, intensity10) ->
      let tr = Trace.create ~n_sites:3 () in
      let cfg =
        Campaign.configure ~base:Campaign.takeover_base
          ~scheme:Replicated.Hybrid ~seed ~n_txns:40
          ~intensity:(float_of_int intensity10 /. 10.0)
          ~trace:tr (takeover_storm ())
      in
      let outcome = Runtime.run cfg in
      (* Every transaction's verdicts are one-sided, the monitor agrees,
         and the run stays atomic. *)
      List.for_all
        (fun v -> v.Monitor.d_commits = 0 || v.Monitor.d_aborts = 0)
        (Monitor.decisions tr)
      && Monitor.no_divergence tr = []
      && oracle_failures cfg outcome = [])

let prop_storm_gauge_drains =
  QCheck2.Test.make ~name:"storm leaves no live stranded entries" ~count:6
    QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let cfg =
        Campaign.configure ~base:Campaign.takeover_base
          ~scheme:Replicated.Hybrid ~seed ~n_txns:40 ~intensity:1.0
          (takeover_storm ())
      in
      let m = (Runtime.run cfg).Runtime.metrics in
      m.Runtime.stranded_live = 0 && m.Runtime.stranded_entries = 0)

let suites =
  [
    ( "takeover",
      [
        Alcotest.test_case "lease terms are monotone" `Quick
          test_lease_terms_are_monotone;
        Alcotest.test_case "lease fences only stale terms" `Quick
          test_lease_fences_only_stale_terms;
        Alcotest.test_case "lease forget is amnesia" `Quick
          test_lease_forget_is_amnesia;
        Alcotest.test_case "repository fences stale vote offers" `Quick
          test_repo_fences_stale_vote_offers;
        Alcotest.test_case "repository never fences certified records" `Quick
          test_repo_never_fences_certified_records;
        Alcotest.test_case "repository amnesia forgets grants" `Quick
          test_repo_amnesia_forgets_grants;
        Alcotest.test_case "monitor accepts re-decisions" `Quick
          test_monitor_accepts_redecisions;
        Alcotest.test_case "monitor flags mixed verdicts" `Quick
          test_monitor_flags_mixed_verdicts;
        Alcotest.test_case "monitor from_id scopes runs" `Quick
          test_monitor_from_id_scopes_runs;
        Alcotest.test_case "takeover adopts and fences" `Slow
          test_takeover_adopts_and_fences;
        Alcotest.test_case "stranded gauge lifecycle" `Slow
          test_stranded_gauge_lifecycle;
        Alcotest.test_case "re-broadcast dedup suppresses repeats" `Slow
          test_rebroadcast_dedup_suppresses_repeats;
        Alcotest.test_case "takeover replays identically" `Slow
          test_takeover_replays_identically;
      ]
      @ to_alcotest [ prop_no_divergence_under_storm; prop_storm_gauge_drains ] );
  ]
