(* Crash-safe transaction termination: the backoff bound, the waits-for
   graph and both deadlock policies, the coordinator-killer stranding
   regression (the tentpole's headline contrast), status re-broadcast to
   every reachable repository for committed and aborted blockers, and the
   determinism witnesses for the new protocol machinery. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_clock
open Atomrep_sim
open Atomrep_replica
module Termination = Atomrep_txn.Termination
module Txn = Atomrep_txn.Txn
module Waits_for = Atomrep_cc.Waits_for
module Campaign = Atomrep_chaos.Campaign
module Rng = Atomrep_stats.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = List.map QCheck_alcotest.to_alcotest
let act i = Action.of_string (Printf.sprintf "T%d" i)

(* --- satellite 1: the backoff bound ------------------------------------ *)

(* The jitter is applied before the cap, so the delay can never exceed
   retry_delay_cap (the pre-fix code capped first and jittered after,
   overshooting the cap by up to 1.5x). Lower bound: half the uncapped
   exponential, unless the cap is below even that. *)
let prop_backoff_within_bounds =
  QCheck2.Test.make ~name:"backoff delay within [0.5*base*2^k, cap]" ~count:500
    QCheck2.Gen.(
      quad (int_range 1 200) (int_range 1 2000) (int_range 0 12) (int_range 0 10_000))
    (fun (base, cap, attempt, seed) ->
      let cfg =
        {
          Runtime.default_config with
          Runtime.retry_delay = float_of_int base;
          retry_delay_cap = float_of_int cap;
        }
      in
      let rng = Rng.create seed in
      let d = Runtime.backoff_delay cfg rng ~attempt in
      let exp = float_of_int base *. (2.0 ** float_of_int attempt) in
      let lo = Float.min (0.5 *. exp) (float_of_int cap) in
      d >= lo -. 1e-9 && d <= float_of_int cap +. 1e-9)

(* --- waits-for graph --------------------------------------------------- *)

let test_waits_for_single_walk () =
  let g = Waits_for.create () in
  let alive _ = true in
  Waits_for.wait g ~waiter:(act 0) ~on:(act 1);
  Waits_for.wait g ~waiter:(act 1) ~on:(act 2);
  check_bool "chain is not a cycle" true
    (Waits_for.cycle_from g ~alive (act 0) = None);
  Waits_for.wait g ~waiter:(act 2) ~on:(act 0);
  (match Waits_for.cycle_from g ~alive (act 0) with
   | Some cycle ->
     check_int "three nodes" 3 (List.length cycle);
     check_bool "starts at the probe" true (Action.equal (List.hd cycle) (act 0))
   | None -> Alcotest.fail "cycle not found");
  (* A resolved (not-alive) member breaks the walk even if its stale edge
     is still in the graph. *)
  check_bool "dead member breaks the cycle" true
    (Waits_for.cycle_from g ~alive:(fun a -> not (Action.equal a (act 1))) (act 0)
     = None)

let prop_waits_for_n_cycle =
  QCheck2.Test.make ~name:"waits-for detects and loses N-cycles" ~count:60
    QCheck2.Gen.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, salt) ->
      let g = Waits_for.create () in
      let alive _ = true in
      let node i = act (salt + (i mod n)) in
      for i = 0 to n - 1 do
        Waits_for.wait g ~waiter:(node i) ~on:(node (i + 1))
      done;
      let found =
        match Waits_for.cycle_from g ~alive (node 0) with
        | Some cycle ->
          List.length cycle = n && Action.equal (List.hd cycle) (node 0)
        | None -> false
      in
      (* Clearing any one member's out-edge must break the cycle. *)
      Waits_for.clear g (node (salt mod n));
      found && Waits_for.cycle_from g ~alive (node 0) = None)

(* --- deadlock policies at the runtime --------------------------------- *)

(* Two transactions, two queues, opposite lock orders: T0 enqueues into q1
   then dequeues q2, T1 enqueues into q2 then dequeues q1. Under locking
   the Deq depends on the other's tentative Enq, so the second operations
   block on each other — a deliberate 2-cycle. *)
let queue_obj name =
  {
    Runtime.obj_name = name;
    obj_spec = Queue_type.spec;
    obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
    obj_assignment = Runtime.default_queue_assignment ~n_sites:3;
    obj_members = None;
  }

let two_cycle_cfg ~deadlock ~seed =
  {
    Runtime.default_config with
    Runtime.scheme = Replicated.Locking;
    objects = [ queue_obj "q1"; queue_obj "q2" ];
    n_txns = 2;
    arrival_mean = 0.5;
    seed;
    script =
      (fun _ i ->
        if i = 0 then
          [
            { Runtime.target = "q1"; invocation = Queue_type.enq_inv "a" };
            { Runtime.target = "q2"; invocation = Queue_type.deq_inv };
          ]
        else
          [
            { Runtime.target = "q2"; invocation = Queue_type.enq_inv "b" };
            { Runtime.target = "q1"; invocation = Queue_type.deq_inv };
          ]);
    deadlock;
  }

let oracle_failures cfg outcome =
  Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome

let test_detect_breaks_two_cycle () =
  let cfg = two_cycle_cfg ~deadlock:Runtime.Detect ~seed:0 in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_int "one victim" 1 m.Runtime.deadlock_aborts;
  check_int "the non-victim commits" 1 m.Runtime.committed;
  check_int "no retry-budget aborts" 0 m.Runtime.conflict_aborts;
  check_bool "oracle holds" true (oracle_failures cfg outcome = [])

let test_disabled_livelocks_until_backoff () =
  (* Without detection the cycle spins through the capped backoff until a
     retry budget runs out: many blocked waits, at least one conflict
     abort, no deadlock victims. The survivor can only commit because
     try_resolve saw the aborted blocker at its coordinator and re-broadcast
     the abort record over the blocker's lingering tentative entries. *)
  let cfg = two_cycle_cfg ~deadlock:Runtime.No_deadlock ~seed:0 in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_int "no victims without a detector" 0 m.Runtime.deadlock_aborts;
  check_bool "retry budget exhausted" true (m.Runtime.conflict_aborts >= 1);
  check_bool "livelocked through the backoff" true (m.Runtime.blocked_waits > 4);
  check_int "survivor unblocked by abort re-broadcast" 1 m.Runtime.committed;
  check_bool "oracle holds" true (oracle_failures cfg outcome = [])

let test_wound_wait_preempts () =
  let cfg = two_cycle_cfg ~deadlock:Runtime.Wound_wait ~seed:0 in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_int "all transactions terminal" 2 (m.Runtime.committed + m.Runtime.aborted);
  check_bool "a wound resolved the cycle" true (m.Runtime.deadlock_aborts >= 1);
  check_bool "the survivor commits" true (m.Runtime.committed >= 1);
  check_bool "oracle holds" true (oracle_failures cfg outcome = [])

(* N transactions in a ring of N queues, each enqueuing into its own and
   dequeuing its neighbor's: near-simultaneous arrivals form an N-cycle.
   The detector picks exactly one (youngest) victim; every non-victim
   commits. *)
let prop_detect_breaks_n_cycle =
  QCheck2.Test.make ~name:"detector breaks N-cycles, non-victims commit" ~count:12
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 100))
    (fun (n, seed) ->
      let objects = List.init n (fun i -> queue_obj (Printf.sprintf "q%d" i)) in
      let cfg =
        {
          Runtime.default_config with
          Runtime.scheme = Replicated.Locking;
          objects;
          n_txns = n;
          arrival_mean = 0.5;
          seed;
          script =
            (fun _ i ->
              [
                {
                  Runtime.target = Printf.sprintf "q%d" i;
                  invocation = Queue_type.enq_inv (Printf.sprintf "v%d" i);
                };
                {
                  Runtime.target = Printf.sprintf "q%d" ((i + 1) mod n);
                  invocation = Queue_type.deq_inv;
                };
              ]);
          deadlock = Runtime.Detect;
        }
      in
      let outcome = Runtime.run cfg in
      let m = outcome.Runtime.metrics in
      m.Runtime.deadlock_aborts = 1
      && m.Runtime.committed = n - 1
      && m.Runtime.conflict_aborts = 0
      && oracle_failures cfg outcome = [])

(* --- satellite 2: the stranding regression ----------------------------- *)

let killer_cfg ~termination ~seed =
  let profile =
    match Campaign.find_profile "coordinator_killer" with
    | Some p -> p
    | None -> Alcotest.fail "coordinator_killer profile missing"
  in
  {
    Runtime.default_config with
    Runtime.scheme = Replicated.Hybrid;
    n_txns = 120;
    seed;
    horizon = 40_000.0;
    install_faults =
      (fun net -> Atomrep_chaos.Nemesis.install profile.Campaign.nemesis net);
    termination;
  }

let test_killer_strands_without_termination () =
  (* Coordinators crashed inside the commit window leave their tentative
     entries on the repositories forever: nobody re-drives, nobody answers
     status queries, the step guards stop the resurrected driver. This is
     the historical give-up the tentpole replaces. *)
  let cfg = killer_cfg ~termination:Termination.Disabled ~seed:3 in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_bool "tentative entries stranded forever" true
    (m.Runtime.stranded_entries > 0);
  check_int "no termination machinery ran" 0
    (m.Runtime.redrives + m.Runtime.coop_commits + m.Runtime.coop_aborts
    + m.Runtime.presumed_aborts + m.Runtime.orphans_reaped
    + m.Runtime.decision_log_writes);
  check_bool "oracle still holds (stranding is a liveness bug)" true
    (oracle_failures cfg outcome = [])

let test_cooperative_resolves_stranded () =
  let cfg = killer_cfg ~termination:Termination.Cooperative ~seed:3 in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  check_int "every tentative entry resolved" 0 m.Runtime.stranded_entries;
  check_bool "the protocol did the resolving" true
    (m.Runtime.redrives + m.Runtime.coop_commits + m.Runtime.coop_aborts
     + m.Runtime.presumed_aborts + m.Runtime.orphans_reaped > 0);
  check_bool "decisions were logged before broadcasting" true
    (m.Runtime.decision_log_writes > 0);
  check_bool "oracle holds under cooperative termination" true
    (oracle_failures cfg outcome = [])

let test_presumed_abort_only_reduces_stranding () =
  let stranded termination =
    (Runtime.run (killer_cfg ~termination ~seed:3)).Runtime.metrics
      .Runtime.stranded_entries
  in
  let none = stranded Termination.Disabled in
  let presumed = stranded Termination.Presumed_abort_only in
  check_bool "recovery redrive alone already reduces stranding" true
    (presumed < none)

(* --- satellite 3: status re-broadcast reaches every reachable repo ----- *)

let make_obj ~seed =
  let engine = Engine.create ~seed in
  let net = Network.create engine ~n_sites:3 () in
  let obj =
    Replicated.create ~name:"q" ~spec:Queue_type.spec ~scheme:Replicated.Hybrid
      ~relation:(Static_dep.minimal Queue_type.spec ~max_len:3)
      ~assignment:(Runtime.default_queue_assignment ~n_sites:3)
      ~net ()
  in
  (engine, net, obj)

let execute_one engine obj ~clock ~txn invocation =
  let result = ref None in
  Replicated.execute obj ~txn ~clock invocation ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Replicated.Done _) -> ()
  | _ -> Alcotest.fail "operation did not complete"

let tentative_at obj ~site =
  List.length (View.classify (Replicated.repository_log obj ~site)).View.tentative

let committed_at obj ~site =
  List.length (View.classify (Replicated.repository_log obj ~site)).View.committed

let test_abort_rebroadcast_clears_all_reachable () =
  let engine, _net, obj = make_obj ~seed:7 in
  let clock = Lamport.create ~site:0 in
  let txn = Txn.create ~action:(act 0) ~begin_ts:(Lamport.tick clock) ~home_site:0 in
  execute_one engine obj ~clock ~txn (Queue_type.enq_inv "x");
  check_bool "a tentative entry exists somewhere" true
    (tentative_at obj ~site:0 + tentative_at obj ~site:1 + tentative_at obj ~site:2
    > 0);
  Replicated.broadcast_status obj (Log.Abort_record (act 0)) ~reachable_from:0;
  Engine.run engine;
  for site = 0 to 2 do
    check_int
      (Printf.sprintf "no tentative entry left at site %d" site)
      0 (tentative_at obj ~site)
  done

let test_commit_rebroadcast_commits_on_all_reachable () =
  let engine, _net, obj = make_obj ~seed:8 in
  let clock = Lamport.create ~site:0 in
  let txn = Txn.create ~action:(act 0) ~begin_ts:(Lamport.tick clock) ~home_site:0 in
  execute_one engine obj ~clock ~txn (Queue_type.enq_inv "x");
  Replicated.broadcast_status obj
    (Log.Commit_record (act 0, Lamport.tick clock))
    ~reachable_from:0;
  Engine.run engine;
  for site = 0 to 2 do
    (* The commit record piggybacks its action's entries, so even a
       repository whose final-quorum write was elsewhere ends up with the
       committed entry. *)
    check_int (Printf.sprintf "committed at site %d" site) 1 (committed_at obj ~site);
    check_int (Printf.sprintf "no tentative left at site %d" site) 0
      (tentative_at obj ~site)
  done

let test_rebroadcast_skips_crashed_site () =
  let engine, net, obj = make_obj ~seed:9 in
  let clock = Lamport.create ~site:0 in
  let txn = Txn.create ~action:(act 0) ~begin_ts:(Lamport.tick clock) ~home_site:0 in
  execute_one engine obj ~clock ~txn (Queue_type.enq_inv "x");
  let before = tentative_at obj ~site:2 in
  Network.crash net 2;
  Replicated.broadcast_status obj (Log.Abort_record (act 0)) ~reachable_from:0;
  Engine.run engine;
  check_int "up sites resolved" 0 (tentative_at obj ~site:0 + tentative_at obj ~site:1);
  check_int "crashed site untouched" before (tentative_at obj ~site:2);
  (* A later re-broadcast (what the orphan reaper does) finishes the job. *)
  Network.recover net 2;
  Replicated.broadcast_status obj (Log.Abort_record (act 0)) ~reachable_from:0;
  Engine.run engine;
  check_int "resolved after recovery" 0 (tentative_at obj ~site:2)

(* --- determinism witnesses --------------------------------------------- *)

let test_cooperative_replays_identically () =
  let run () = Runtime.run (killer_cfg ~termination:Termination.Cooperative ~seed:5) in
  let o1 = run () and o2 = run () in
  let m1 = o1.Runtime.metrics and m2 = o2.Runtime.metrics in
  check_int "committed" m1.Runtime.committed m2.Runtime.committed;
  check_int "aborted" m1.Runtime.aborted m2.Runtime.aborted;
  check_int "coop commits" m1.Runtime.coop_commits m2.Runtime.coop_commits;
  check_int "coop aborts" m1.Runtime.coop_aborts m2.Runtime.coop_aborts;
  check_int "presumed" m1.Runtime.presumed_aborts m2.Runtime.presumed_aborts;
  check_int "redrives" m1.Runtime.redrives m2.Runtime.redrives;
  check_int "orphans" m1.Runtime.orphans_reaped m2.Runtime.orphans_reaped;
  check_int "messages" m1.Runtime.msgs_sent m2.Runtime.msgs_sent;
  check_bool "identical histories" true (o1.Runtime.histories = o2.Runtime.histories)

let test_tracing_does_not_perturb_termination () =
  let cfg trace =
    { (killer_cfg ~termination:Termination.Cooperative ~seed:5) with Runtime.trace }
  in
  let off = Runtime.run (cfg None) in
  let on = Runtime.run (cfg (Some (Atomrep_obs.Trace.create ~n_sites:3 ()))) in
  check_int "committed identical" off.Runtime.metrics.Runtime.committed
    on.Runtime.metrics.Runtime.committed;
  check_int "stranded identical" off.Runtime.metrics.Runtime.stranded_entries
    on.Runtime.metrics.Runtime.stranded_entries;
  check_bool "identical histories" true (off.Runtime.histories = on.Runtime.histories)

let test_termination_diverges_only_by_protocol () =
  (* The mode off/on runs share the fault schedule (the commit-window hook
     fires unconditionally and draws nothing by itself); the counters
     witness that only the protocol's own actions differ. *)
  let off = (Runtime.run (killer_cfg ~termination:Termination.Disabled ~seed:5)).Runtime.metrics in
  let on = (Runtime.run (killer_cfg ~termination:Termination.Cooperative ~seed:5)).Runtime.metrics in
  check_int "disabled writes no decisions" 0 off.Runtime.decision_log_writes;
  check_int "disabled never redrives" 0 off.Runtime.redrives;
  check_bool "cooperative writes decisions" true (on.Runtime.decision_log_writes > 0);
  check_bool "stranding is the protocol's delta" true
    (off.Runtime.stranded_entries > on.Runtime.stranded_entries)

let suites =
  [
    ( "termination",
      [
        Alcotest.test_case "waits-for single walk" `Quick test_waits_for_single_walk;
        Alcotest.test_case "detect breaks the 2-cycle" `Quick
          test_detect_breaks_two_cycle;
        Alcotest.test_case "disabled livelocks until backoff" `Quick
          test_disabled_livelocks_until_backoff;
        Alcotest.test_case "wound-wait preempts" `Quick test_wound_wait_preempts;
        Alcotest.test_case "killer strands without termination" `Slow
          test_killer_strands_without_termination;
        Alcotest.test_case "cooperative resolves stranded" `Slow
          test_cooperative_resolves_stranded;
        Alcotest.test_case "presumed-abort-only reduces stranding" `Slow
          test_presumed_abort_only_reduces_stranding;
        Alcotest.test_case "abort re-broadcast clears all reachable" `Quick
          test_abort_rebroadcast_clears_all_reachable;
        Alcotest.test_case "commit re-broadcast commits on all reachable" `Quick
          test_commit_rebroadcast_commits_on_all_reachable;
        Alcotest.test_case "re-broadcast skips crashed site" `Quick
          test_rebroadcast_skips_crashed_site;
        Alcotest.test_case "cooperative replays identically" `Slow
          test_cooperative_replays_identically;
        Alcotest.test_case "tracing does not perturb termination" `Slow
          test_tracing_does_not_perturb_termination;
        Alcotest.test_case "termination diverges only by protocol" `Slow
          test_termination_diverges_only_by_protocol;
      ]
      @ to_alcotest
          [
            prop_backoff_within_bounds;
            prop_waits_for_n_cycle;
            prop_detect_breaks_n_cycle;
          ] );
  ]
